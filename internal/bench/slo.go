package bench

import (
	"fmt"
	"time"

	"bulletfs/internal/bullet"
	"bulletfs/internal/bulletsvc"
	"bulletfs/internal/disk"
	"bulletfs/internal/hwmodel"
	"bulletfs/internal/loadgen"
	"bulletfs/internal/rpc"
	"bulletfs/internal/simnet"
	"bulletfs/internal/workload"
)

// The SLO experiment (cmd/benchmark -slo) is the open-loop counterpart of
// the paper tables: instead of one closed-loop client timing isolated
// operations, internal/loadgen offers Poisson arrivals at fixed rates to an
// admission-limited server and records the full latency distribution —
// including queueing, which the closed-loop tables cannot see (coordinated
// omission). The output is an SLO table: offered load x {p50, p99, p99.9,
// max, shed rate}, gated one-sidedly in CI so tail regressions fail while
// improvements pass free.
//
// Everything below is seeded and runs on the virtual clock, so the cells
// are exact across runs and machines; slo_baseline.json pins them.
const (
	sloLimit = 16   // admission: max in-flight file operations
	sloOps   = 600  // arrivals per steady-state cell
	sloFiles = 96   // working-set population
	sloSeed  = 1989 // workload + arrival seed
)

// sloLoads are the offered loads (virtual ops/s) of the steady regime. The
// simulated Amoeba-era server saturates near 100 ops/s, so the sweep holds
// one comfortable point, one near the knee, and one far past it.
var sloLoads = []float64{20, 80, 320}

// chaosLoad runs the fault-injection regime at a moderate load where the
// server has headroom to absorb failover and repair work.
const chaosLoad = 60

// brownoutLoad runs the gray-failure regime. Same moderate point as the
// chaos cell: the interesting question is not throughput but whether a
// replica that slows down (without ever failing) stays invisible to
// clients.
const brownoutLoad = 60

// sloColumns are the per-cell metrics. Latency quantiles cover admitted
// requests end to end (arrival to reply, queueing included); shed_pct is
// the fraction of arrivals refused with StatusBusy; errors counts admitted
// requests that returned a non-OK status — the SLO demands it stays zero.
var sloColumns = []string{
	"offered_ops", "achieved_ops",
	"p50_ms", "p99_ms", "p999_ms", "max_ms",
	"shed_pct", "errors",
}

// sloRow flattens one run into a table row.
func sloRow(label string, res *loadgen.Result) RowT {
	shedPct := 0.0
	if res.Arrivals > 0 {
		shedPct = 100 * float64(res.Shed) / float64(res.Arrivals)
	}
	return RowT{
		Label: label,
		Values: []float64{
			res.Offered,
			res.Achieved,
			msec(res.Latency.QuantileDuration(0.5)),
			msec(res.Latency.QuantileDuration(0.99)),
			msec(res.Latency.QuantileDuration(0.999)),
			msec(time.Duration(res.Latency.Max())),
			shedPct,
			float64(res.Errors),
		},
	}
}

// sloWorkload is the shared workload shape of every SLO cell.
func sloWorkload() workload.Config {
	return workload.Config{Files: sloFiles, Seed: sloSeed}
}

// SLOResult holds the SLO tables and their shape checks.
type SLOResult struct {
	Steady   Table
	Chaos    Table
	Brownout Table
	Checks   []Check
}

// RunSLO measures the steady and chaos SLO tables.
func RunSLO() (*SLOResult, error) {
	out := &SLOResult{
		Steady: Table{
			Title:     fmt.Sprintf("Open-loop SLO, admission limit %d", sloLimit),
			Unit:      "mixed",
			Columns:   sloColumns,
			RowHeader: "Load",
		},
		Chaos: Table{
			Title:     "Open-loop SLO under chaos (bit flips, replica kill/revive)",
			Unit:      "mixed",
			Columns:   sloColumns,
			RowHeader: "Load",
		},
		Brownout: Table{
			Title:     "Open-loop SLO under brownout (main replica slows, never fails)",
			Unit:      "mixed",
			Columns:   sloColumns,
			RowHeader: "Load",
		},
	}

	var lowest, highest *loadgen.Result
	for _, load := range sloLoads {
		w, err := NewBulletWorld(BulletConfig{
			Profile:        hwmodel.AmoebaProfile(),
			AdmissionLimit: sloLimit,
		})
		if err != nil {
			return nil, err
		}
		res, err := loadgen.Run(
			loadgen.Target{Net: w.Net, Port: w.Port, Admission: w.Admission},
			loadgen.Config{
				Arrivals: loadgen.NewPoisson(load, sloSeed),
				Ops:      sloOps,
				Workload: sloWorkload(),
			},
		)
		if err != nil {
			return nil, fmt.Errorf("slo: load %.0f: %w", load, err)
		}
		out.Steady.Rows = append(out.Steady.Rows, sloRow(fmt.Sprintf("%.0f ops", load), res))
		if lowest == nil {
			lowest = res
		}
		highest = res
	}

	chaos, err := runChaosSLO()
	if err != nil {
		return nil, err
	}
	out.Chaos.Rows = append(out.Chaos.Rows, sloRow(fmt.Sprintf("%.0f ops", float64(chaosLoad)), chaos))

	brown, set, err := runBrownoutSLO()
	if err != nil {
		return nil, err
	}
	out.Brownout.Rows = append(out.Brownout.Rows, sloRow(fmt.Sprintf("%.0f ops", float64(brownoutLoad)), brown))

	out.Checks = []Check{
		{
			ID:    "S1",
			Claim: "below saturation clients see no errors and no sheds",
			Detail: fmt.Sprintf("%.0f ops/s: %d arrivals, %d shed, %d errors",
				sloLoads[0], lowest.Arrivals, lowest.Shed, lowest.Errors),
			Pass: lowest.Shed == 0 && lowest.Errors == 0,
		},
		{
			ID:    "S2",
			Claim: "past saturation the server sheds instead of queueing unboundedly",
			Detail: fmt.Sprintf("%.0f ops/s: %d shed, peak in-flight %d (limit %d), %d errors",
				sloLoads[len(sloLoads)-1], highest.Shed, highest.MaxOutstanding, sloLimit, highest.Errors),
			Pass: highest.Shed > 0 && highest.MaxOutstanding <= sloLimit && highest.Errors == 0,
		},
		{
			ID:    "S3",
			Claim: "tail latency grows with offered load",
			Detail: fmt.Sprintf("p99 %.2f ms at %.0f ops/s vs %.2f ms at %.0f ops/s",
				msec(lowest.Latency.QuantileDuration(0.99)), sloLoads[0],
				msec(highest.Latency.QuantileDuration(0.99)), sloLoads[len(sloLoads)-1]),
			Pass: highest.Latency.Quantile(0.99) > lowest.Latency.Quantile(0.99),
		},
		{
			ID:    "S4",
			Claim: "chaos faults stay invisible to admitted clients",
			Detail: fmt.Sprintf("%d arrivals through bit flips and kill/revive: %d errors, %d shed",
				chaos.Arrivals, chaos.Errors, chaos.Shed),
			Pass: chaos.Errors == 0,
		},
		{
			ID:    "B1",
			Claim: "a browned-out replica trips its breaker, recovers, and clients never see an error",
			Detail: fmt.Sprintf("%d arrivals through the brownout: %d errors, breaker opened %dx, replica 0 ends %q",
				brown.Arrivals, brown.Errors, set.BreakerOpens(), set.BreakerState(0)),
			Pass: brown.Errors == 0 && set.BreakerOpens() >= 1 && set.BreakerState(0) == "closed",
		},
		{
			ID:    "B2",
			Claim: "the brownout's blast radius is the streak that trips the breaker, not the whole run",
			Detail: fmt.Sprintf("p50 %.2f ms, p99 %.2f ms, max %.2f ms against a %.0f ms injected stall",
				msec(brown.Latency.QuantileDuration(0.5)), msec(brown.Latency.QuantileDuration(0.99)),
				msec(time.Duration(brown.Latency.Max())), msec(brownoutHeavy)),
			Pass: brown.Latency.QuantileDuration(0.5) < brownoutHeavy &&
				time.Duration(brown.Latency.Max()) < 8*brownoutHeavy,
		},
		{
			ID:    "B3",
			Claim: "hedged reads fire under the brownout and respect the rate cap",
			Detail: fmt.Sprintf("%d hedges across %d laddered reads (cap %d%%)",
				set.HedgedReads(), set.GrayLadderReads(), disk.DefaultHedgeRatePct),
			Pass: set.HedgedReads() > 0 &&
				set.HedgedReads()*100 <= set.GrayLadderReads()*disk.DefaultHedgeRatePct,
		},
	}
	return out, nil
}

// runChaosSLO drives the open-loop workload through scripted faults: a
// burst of bit flips on the main replica (checksum failover + self-heal),
// then a replica kill (writes degrade to the survivor), then heal and a
// synchronous online recovery. Everything fires at fixed arrival indexes
// in the single runner goroutine, so the regime is exactly as
// deterministic as the steady one — StartRecover's background goroutine
// would race its disk-time charges against the workload's, which is why
// recovery runs inline here.
func runChaosSLO() (*loadgen.Result, error) {
	profile := hwmodel.AmoebaProfile()
	clock := &hwmodel.Clock{}
	faulty := make([]*disk.FaultyDisk, 2)
	devs := make([]disk.Device, 2)
	for i := range devs {
		mem, err := disk.NewMem(512, 64*1024)
		if err != nil {
			return nil, err
		}
		faulty[i] = disk.NewFaulty(mem)
		devs[i] = disk.NewSim(faulty[i], profile.Disk, clock)
	}
	set, err := disk.NewReplicaSet(devs...)
	if err != nil {
		return nil, err
	}
	if err := bullet.Format(set, 2000); err != nil {
		return nil, err
	}
	// A small cache forces read misses, so the scripted read corruption is
	// actually consumed and the failover/repair path runs under load.
	eng, err := bullet.New(set, bullet.Options{CacheBytes: 256 << 10})
	if err != nil {
		return nil, err
	}
	mux := rpc.NewMux(0)
	svc := bulletsvc.New(eng)
	adm := bulletsvc.NewAdmission(sloLimit)
	adm.AttachMetrics(eng.Metrics())
	svc.AttachAdmission(adm)
	svc.Register(mux)
	net := simnet.New(mux, clock, profile.Net, profile.CPU)

	var recErr error
	res, err := loadgen.Run(
		loadgen.Target{Net: net, Port: eng.Port(), Admission: adm},
		loadgen.Config{
			Arrivals: loadgen.NewPoisson(chaosLoad, sloSeed),
			Ops:      500,
			Workload: sloWorkload(),
			OnArrival: func(i int) {
				switch i {
				case 120:
					// Bit flips on the main replica's next cache misses:
					// reads must fail over to the mirror and repair.
					faulty[0].CorruptNextReads(4)
				case 220:
					// Kill the mirror: writes degrade to the survivor.
					faulty[1].Fault()
				case 380:
					// Revive and recover inline (see the function comment).
					faulty[1].Heal()
					if err := set.Recover(1); err != nil && recErr == nil {
						recErr = err
					}
				}
			},
		},
	)
	if err != nil {
		return nil, fmt.Errorf("slo: chaos: %w", err)
	}
	if recErr != nil {
		return nil, fmt.Errorf("slo: chaos: recovering replica 1: %w", recErr)
	}
	return res, nil
}

// Brownout script parameters: the heavy phase models a replica that still
// answers but takes 2 virtual seconds per I/O (a dying disk, a saturated
// controller); the mild phase sits below the breaker's MinSlow floor, so
// it must be absorbed by EWMA-ranked hedging, not by tripping the breaker.
const (
	brownoutHeavy = 2 * time.Second
	brownoutMild  = 200 * time.Millisecond
)

// runBrownoutSLO drives a read-only open-loop workload through a gray
// failure — the paper's fail-stop model (§3: a replica is either correct
// or dead) has no word for a disk that merely becomes 100x slower, so
// this cell measures the machinery added for it. The main replica's
// latency is scripted on the virtual clock: a heavy phase (breaker must
// open, reads must fail over to the healthy mirror with zero
// client-visible errors), a quiet phase (cooldown elapses, a half-open
// probe closes the breaker), and a mild phase below the slowness floor
// (predictive hedging absorbs it under the hard rate cap). The injected
// latency is delivered to the virtual clock, never to the wall clock, and
// the hedge timer is disabled (nil-channel After), so the cell is exactly
// as deterministic as the steady regime.
func runBrownoutSLO() (*loadgen.Result, *disk.ReplicaSet, error) {
	profile := hwmodel.AmoebaProfile()
	clock := &hwmodel.Clock{}
	faulty := make([]*disk.FaultyDisk, 2)
	devs := make([]disk.Device, 2)
	for i := range devs {
		mem, err := disk.NewMem(512, 64*1024)
		if err != nil {
			return nil, nil, err
		}
		faulty[i] = disk.NewFaulty(mem)
		devs[i] = disk.NewSim(faulty[i], profile.Disk, clock)
	}
	set, err := disk.NewReplicaSet(devs...)
	if err != nil {
		return nil, nil, err
	}
	if err := bullet.Format(set, 2000); err != nil {
		return nil, nil, err
	}
	set.EnableBreakers(disk.BreakerConfig{
		MinSlow:       500 * time.Millisecond,
		Cooldown:      2 * time.Second,
		HedgeDelayMin: 50 * time.Millisecond,
		HedgeDelayMax: 250 * time.Millisecond,
		Now:           func() int64 { return int64(clock.Now()) },
		After:         func(time.Duration) <-chan time.Time { return nil },
	})
	// The small cache forces read misses so the ladder actually runs.
	eng, err := bullet.New(set, bullet.Options{CacheBytes: 256 << 10})
	if err != nil {
		return nil, nil, err
	}
	mux := rpc.NewMux(0)
	svc := bulletsvc.New(eng)
	adm := bulletsvc.NewAdmission(sloLimit)
	adm.AttachMetrics(eng.Metrics())
	svc.AttachAdmission(adm)
	svc.Register(mux)
	net := simnet.New(mux, clock, profile.Net, profile.CPU)

	// Read-only measured mix: creates would fan writes out to the slowed
	// replica from background goroutines, whose virtual-clock charges
	// would race the runner's. Reads ladder synchronously, so the run
	// stays deterministic.
	w := sloWorkload()
	w.ReadFrac = 1.0
	res, err := loadgen.Run(
		loadgen.Target{Net: net, Port: eng.Port(), Admission: adm},
		loadgen.Config{
			Arrivals: loadgen.NewPoisson(brownoutLoad, sloSeed),
			Ops:      sloOps,
			Workload: w,
			OnArrival: func(i int) {
				switch i {
				case 100:
					// Heavy brownout on the main replica: the breaker
					// must open and reads must drain to the mirror.
					faulty[0].SetLatency(brownoutHeavy, brownoutHeavy, sloSeed, clock.Advance)
				case 250:
					// Quiet: the cooldown elapses, a half-open probe
					// finds the replica fast again and closes the breaker.
					faulty[0].SetLatency(0, 0, 0, nil)
				case 350:
					// Mild brownout below the MinSlow floor: no breaker
					// trip allowed, hedging absorbs the tail instead.
					faulty[0].SetLatency(brownoutMild, brownoutMild, sloSeed, clock.Advance)
				case 500:
					faulty[0].SetLatency(0, 0, 0, nil)
				}
			},
		},
	)
	if err != nil {
		return nil, nil, fmt.Errorf("slo: brownout: %w", err)
	}
	return res, set, nil
}
