package bench

import (
	"fmt"
	"time"

	"bulletfs/internal/hwmodel"
	"bulletfs/internal/nfs"
)

// Iterations per measured point. The virtual clock is deterministic, but
// cache state evolves across iterations (churn, LRU), so several
// iterations capture the steady state the paper's loops measured.
const iterations = 5

// F2Result holds Fig. 2: Bullet delay and bandwidth for READ and
// CREATE+DEL.
type F2Result struct {
	Delay     Table
	Bandwidth Table
	// raw per-size means, for the comparison checks
	ReadDelay   map[int]time.Duration
	CreateDelay map[int]time.Duration
}

// RunF2 regenerates Fig. 2: the Bullet server's read and create+delete
// performance. Reads are served from the server's RAM cache ("in all cases
// the test file will be completely in memory", §4); creates write through
// to both disks, and the create+del column includes deleting the file on
// both disks, matching the paper's measurement.
func RunF2() (*F2Result, error) {
	w, err := NewBulletWorld(BulletConfig{Profile: hwmodel.AmoebaProfile()})
	if err != nil {
		return nil, err
	}
	res := &F2Result{
		Delay:       Table{Title: "Fig. 2(a) Bullet file server, delay", Unit: "msec", Columns: []string{"READ", "CREATE+DEL"}},
		Bandwidth:   Table{Title: "Fig. 2(b) Bullet file server, bandwidth", Unit: "Kbytes/sec", Columns: []string{"READ", "CREATE+DEL"}},
		ReadDelay:   map[int]time.Duration{},
		CreateDelay: map[int]time.Duration{},
	}
	for _, size := range PaperSizes {
		data := pattern(size)

		// READ: create once, then measure repeated whole-file reads.
		cap0, err := w.Client.Create(w.Port, data, 2)
		if err != nil {
			return nil, fmt.Errorf("bench f2: create: %w", err)
		}
		var readTotal time.Duration
		for i := 0; i < iterations; i++ {
			// The paper's retrieval protocol (§2.2): BULLET.SIZE to learn
			// the length and allocate memory, then BULLET.READ — two
			// transactions.
			d, err := Measure(w.Clock, func() error {
				n, err := w.Client.Size(cap0)
				if err != nil {
					return err
				}
				if n != int64(size) {
					return fmt.Errorf("size mismatch: %d of %d", n, size)
				}
				got, err := w.Client.Read(cap0)
				if err == nil && len(got) != size {
					return fmt.Errorf("short read: %d of %d", len(got), size)
				}
				return err
			})
			if err != nil {
				return nil, fmt.Errorf("bench f2: read: %w", err)
			}
			readTotal += d
		}
		readMean := readTotal / iterations
		if err := w.Client.Delete(cap0); err != nil {
			return nil, err
		}

		// CREATE+DEL: both operations together, write-through to 2 disks.
		var cdTotal time.Duration
		for i := 0; i < iterations; i++ {
			d, err := Measure(w.Clock, func() error {
				c, err := w.Client.Create(w.Port, data, 2)
				if err != nil {
					return err
				}
				return w.Client.Delete(c)
			})
			if err != nil {
				return nil, fmt.Errorf("bench f2: create+del: %w", err)
			}
			cdTotal += d
		}
		cdMean := cdTotal / iterations

		res.ReadDelay[size] = readMean
		res.CreateDelay[size] = cdMean
		res.Delay.Rows = append(res.Delay.Rows, RowT{
			Label:  SizeLabel(size),
			Values: []float64{msec(readMean), msec(cdMean)},
		})
		res.Bandwidth.Rows = append(res.Bandwidth.Rows, RowT{
			Label:  SizeLabel(size),
			Values: []float64{kbps(size, readMean), kbps(size, cdMean)},
		})
	}
	return res, nil
}

// F3Result holds Fig. 3: SUN NFS delay and bandwidth for READ and CREATE.
type F3Result struct {
	Delay     Table
	Bandwidth Table

	ReadDelay   map[int]time.Duration
	CreateDelay map[int]time.Duration
}

// RunF3 regenerates Fig. 3: the NFS-style server measured the way the
// paper did — reads are an lseek followed by 8 KB read RPCs with client
// caching disabled; creates are creat + per-block write + close against a
// write-through server with one disk and a 3 MB buffer cache. Between
// operations the harness applies the shared production server's cache
// churn (see NFSWorld).
func RunF3() (*F3Result, error) {
	w, err := NewNFSWorld(NFSConfig{Profile: hwmodel.SunNFSProfile()})
	if err != nil {
		return nil, err
	}
	res := &F3Result{
		Delay:       Table{Title: "Fig. 3(a) SUN NFS file server, delay", Unit: "msec", Columns: []string{"READ", "CREATE"}},
		Bandwidth:   Table{Title: "Fig. 3(b) SUN NFS file server, bandwidth", Unit: "Kbytes/sec", Columns: []string{"READ", "CREATE"}},
		ReadDelay:   map[int]time.Duration{},
		CreateDelay: map[int]time.Duration{},
	}
	root, err := w.Client.Root()
	if err != nil {
		return nil, err
	}
	for si, size := range PaperSizes {
		data := pattern(size)

		// READ: the test file exists; lseek+read iterations.
		name := fmt.Sprintf("read-%d", si)
		h, err := w.Client.CreateWrite(root, name, data)
		if err != nil {
			return nil, fmt.Errorf("bench f3: setup write: %w", err)
		}
		w.Churn()
		var readTotal time.Duration
		for i := 0; i < iterations; i++ {
			// The paper's read test is an lseek (local, free) followed by
			// a read of the open file: sequential one-block read RPCs, no
			// per-iteration attribute fetch.
			d, err := Measure(w.Clock, func() error {
				total := 0
				for off := int64(0); total < size; {
					blk, err := w.Client.ReadBlock(h, off, nfs.BlockSize)
					if err != nil {
						return err
					}
					if len(blk) == 0 {
						break
					}
					total += len(blk)
					off += int64(len(blk))
				}
				if total != size {
					return fmt.Errorf("short read: %d of %d", total, size)
				}
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("bench f3: read: %w", err)
			}
			readTotal += d
			w.Churn()
		}
		readMean := readTotal / iterations

		// CREATE: creat, write loop, close; the file is removed between
		// iterations (removal not counted, as in the paper's loop).
		var crTotal time.Duration
		for i := 0; i < iterations; i++ {
			cname := fmt.Sprintf("create-%d-%d", si, i)
			d, err := Measure(w.Clock, func() error {
				_, err := w.Client.CreateWrite(root, cname, data)
				return err
			})
			if err != nil {
				return nil, fmt.Errorf("bench f3: create: %w", err)
			}
			crTotal += d
			if err := w.Client.Remove(root, cname); err != nil {
				return nil, err
			}
			w.Churn()
		}
		crMean := crTotal / iterations

		res.ReadDelay[size] = readMean
		res.CreateDelay[size] = crMean
		res.Delay.Rows = append(res.Delay.Rows, RowT{
			Label:  SizeLabel(size),
			Values: []float64{msec(readMean), msec(crMean)},
		})
		res.Bandwidth.Rows = append(res.Bandwidth.Rows, RowT{
			Label:  SizeLabel(size),
			Values: []float64{kbps(size, readMean), kbps(size, crMean)},
		})
	}
	return res, nil
}

// CompareResult holds the §4 comparison: the ratio table and the paper's
// four textual claims as pass/fail checks.
type CompareResult struct {
	Ratios Table
	Checks []Check
}

// RunCompare runs F2 and F3 and evaluates the paper's comparison claims:
//
//	C1 Bullet reads are 3-6x faster than NFS at every size;
//	C2 above 64 KB, Bullet's write bandwidth exceeds NFS's read bandwidth;
//	C3 for large files, Bullet's (two-disk) create bandwidth is roughly an
//	   order of magnitude above NFS's create bandwidth;
//	C4 NFS 1 MB bandwidth is lower than its 64 KB bandwidth (both columns).
func RunCompare(f2 *F2Result, f3 *F3Result) *CompareResult {
	res := &CompareResult{
		Ratios: Table{
			Title:   "Bullet vs NFS (delay ratios, NFS/Bullet)",
			Unit:    "x",
			Columns: []string{"READ", "CREATE"},
		},
	}
	minRead, maxRead := 1e18, 0.0
	for _, size := range PaperSizes {
		readRatio := float64(f3.ReadDelay[size]) / float64(f2.ReadDelay[size])
		createRatio := float64(f3.CreateDelay[size]) / float64(f2.CreateDelay[size])
		if readRatio < minRead {
			minRead = readRatio
		}
		if readRatio > maxRead {
			maxRead = readRatio
		}
		res.Ratios.Rows = append(res.Ratios.Rows, RowT{
			Label:  SizeLabel(size),
			Values: []float64{readRatio, createRatio},
		})
	}

	// C1: reads 3-6x at every size (we accept the 2.5-12x band as "the
	// same shape": Bullet clearly wins everywhere, by mid single digits).
	res.Checks = append(res.Checks, Check{
		ID:    "C1",
		Claim: "Bullet reads 3-6x faster than NFS at every size",
		Detail: fmt.Sprintf("measured read ratios %.1fx .. %.1fx",
			minRead, maxRead),
		Pass: minRead >= 2.5 && maxRead <= 12,
	})

	// C2: for >64 KB, Bullet write bandwidth > NFS read bandwidth.
	big := 1 << 20
	bulletWriteBW := kbps(big, f2.CreateDelay[big])
	nfsReadBW := kbps(big, f3.ReadDelay[big])
	res.Checks = append(res.Checks, Check{
		ID:    "C2",
		Claim: "above 64 KB, Bullet write bandwidth exceeds NFS read bandwidth",
		Detail: fmt.Sprintf("1 MB: Bullet CREATE+DEL %.0f KB/s vs NFS READ %.0f KB/s",
			bulletWriteBW, nfsReadBW),
		Pass: bulletWriteBW > nfsReadBW,
	})

	// C3: large-file create bandwidth roughly 10x NFS (accept >= 4x).
	nfsCreateBW := kbps(big, f3.CreateDelay[big])
	res.Checks = append(res.Checks, Check{
		ID:    "C3",
		Claim: "large-file Bullet create bandwidth ~10x NFS create bandwidth",
		Detail: fmt.Sprintf("1 MB: Bullet %.0f KB/s vs NFS %.0f KB/s (%.1fx)",
			bulletWriteBW, nfsCreateBW, bulletWriteBW/nfsCreateBW),
		Pass: bulletWriteBW >= 4*nfsCreateBW,
	})

	// C4: NFS bandwidth drops from 64 KB to 1 MB in both columns.
	k64 := 64 * 1024
	nfsRead64 := kbps(k64, f3.ReadDelay[k64])
	nfsCreate64 := kbps(k64, f3.CreateDelay[k64])
	res.Checks = append(res.Checks, Check{
		ID:    "C4",
		Claim: "NFS 1 MB bandwidth below its 64 KB bandwidth (read and create)",
		Detail: fmt.Sprintf("read %.0f->%.0f KB/s, create %.0f->%.0f KB/s",
			nfsRead64, nfsReadBW, nfsCreate64, nfsCreateBW),
		Pass: nfsReadBW < nfsRead64 && nfsCreateBW < nfsCreate64,
	})
	return res
}
