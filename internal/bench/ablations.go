package bench

import (
	"fmt"
	"time"

	"bulletfs/internal/capability"
	"bulletfs/internal/hwmodel"
)

// RunAblation regenerates experiment A1 (DESIGN.md): contiguous whole-file
// storage versus the block model on *identical* simulated hardware — the
// same Amoeba RPC stack, the same disk, an idle dedicated server, and a
// freshly formatted (stride 1) filesystem for the block server. Whatever
// gap remains is attributable purely to the paper's two design choices:
// contiguity and whole-file transfer. The Fig. 2/Fig. 3 comparison, by
// contrast, also includes Sun RPC overheads, filesystem aging and
// production cache pressure.
func RunAblation() (*Table, error) {
	profile := hwmodel.AmoebaProfile()

	bw, err := NewBulletWorld(BulletConfig{Profile: profile})
	if err != nil {
		return nil, err
	}
	nw, err := NewNFSWorld(NFSConfig{
		Profile:     profile,
		AllocStride: 1,  // freshly formatted: best case for the block model
		Residency:   -1, // dedicated idle server: no cache churn
	})
	if err != nil {
		return nil, err
	}
	root, err := nw.Client.Root()
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:   "A1 ablation: contiguous vs block layout, identical hardware (delay)",
		Unit:    "msec",
		Columns: []string{"BULLET-READ", "BLOCK-READ", "BULLET-CRE", "BLOCK-CRE"},
	}
	for si, size := range PaperSizes {
		data := pattern(size)

		// Bullet read (SIZE+READ) and create, pf=1 to match the block
		// server's single disk.
		cap0, err := bw.Client.Create(bw.Port, data, 1)
		if err != nil {
			return nil, err
		}
		// Settle the background (post-P-FACTOR) replica write so its disk
		// time cannot leak into the measured read.
		if err := bw.Client.Sync(bw.Port); err != nil {
			return nil, err
		}
		bRead, err := Measure(bw.Clock, func() error {
			if _, err := bw.Client.Size(cap0); err != nil {
				return err
			}
			_, err := bw.Client.Read(cap0)
			return err
		})
		if err != nil {
			return nil, err
		}
		bCreate, err := Measure(bw.Clock, func() error {
			c, err := bw.Client.Create(bw.Port, data, 1)
			if err != nil {
				return err
			}
			return bw.Client.Delete(c)
		})
		if err != nil {
			return nil, err
		}
		if err := bw.Client.Delete(cap0); err != nil {
			return nil, err
		}

		// Block server on the same hardware.
		name := fmt.Sprintf("a1-%d", si)
		h, err := nw.Client.CreateWrite(root, name, data)
		if err != nil {
			return nil, err
		}
		// Warm pass, then measure (idle dedicated server: cache is fair).
		if _, err := nw.Client.ReadAll(h); err != nil {
			return nil, err
		}
		nRead, err := Measure(nw.Clock, func() error {
			_, err := nw.Client.ReadAll(h)
			return err
		})
		if err != nil {
			return nil, err
		}
		nCreate, err := Measure(nw.Clock, func() error {
			_, err := nw.Client.CreateWrite(root, name+"x", data)
			return err
		})
		if err != nil {
			return nil, err
		}
		if err := nw.Client.Remove(root, name+"x"); err != nil {
			return nil, err
		}

		t.Rows = append(t.Rows, RowT{
			Label:  SizeLabel(size),
			Values: []float64{msec(bRead), msec(nRead), msec(bCreate), msec(nCreate)},
		})
	}
	return t, nil
}

// RunPFactor regenerates experiment A2: the create delay for each paranoia
// factor (§2.2). P-FACTOR 0 replies after the RAM cache copy, 1 after one
// disk, 2 after both; the remaining writes continue in the background and
// the harness drains them between measurements so each point is clean.
func RunPFactor() (*Table, error) {
	w, err := NewBulletWorld(BulletConfig{Profile: hwmodel.AmoebaProfile()})
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "A2: create delay by paranoia factor (two replica disks)",
		Unit:    "msec",
		Columns: []string{"PF=0", "PF=1", "PF=2"},
	}
	for _, size := range PaperSizes {
		data := pattern(size)
		var vals []float64
		for pf := 0; pf <= 2; pf++ {
			var total time.Duration
			for i := 0; i < iterations; i++ {
				var c capability.Capability
				d, err := Measure(w.Clock, func() error {
					var err error
					c, err = w.Client.Create(w.Port, data, pf)
					return err
				})
				if err != nil {
					return nil, fmt.Errorf("bench a2 pf=%d: %w", pf, err)
				}
				total += d
				// Settle background write-through outside the measurement
				// and clean up.
				if err := w.Client.Sync(w.Port); err != nil {
					return nil, err
				}
				if err := w.Client.Delete(c); err != nil {
					return nil, err
				}
			}
			vals = append(vals, msec(total/iterations))
		}
		t.Rows = append(t.Rows, RowT{Label: SizeLabel(size), Values: vals})
	}
	return t, nil
}

// PFactorChecks verifies the A2 shape: delay grows with the paranoia
// factor, and PF=0 is (nearly) independent of file size on the server side
// — the reply leaves after the RAM copy; only the request's wire time
// scales.
func PFactorChecks(t *Table) []Check {
	ordered := true
	for _, r := range t.Rows {
		if !(r.Values[0] <= r.Values[1] && r.Values[1] <= r.Values[2]) {
			ordered = false
		}
	}
	checks := []Check{{
		ID:     "A2a",
		Claim:  "create delay is monotonic in the paranoia factor",
		Detail: "PF=0 <= PF=1 <= PF=2 at every size",
		Pass:   ordered,
	}}
	// At 1 MB, PF=2 must cost two disk transfers more than PF=0.
	last := t.Rows[len(t.Rows)-1]
	checks = append(checks, Check{
		ID:    "A2b",
		Claim: "PF=2 pays both disk writes before replying",
		Detail: fmt.Sprintf("1 MB: PF=0 %.0f ms, PF=2 %.0f ms",
			last.Values[0], last.Values[2]),
		Pass: last.Values[2] > last.Values[0]*1.5,
	})
	return checks
}

// RunFragmentation regenerates experiment A3: external fragmentation under
// create/delete churn — the §3 trade-off of contiguous allocation ("an 800
// MB disk to store 500 MB worth of files ... unless compaction is done") —
// and what the 3 a.m. compactor buys back.
func RunFragmentation() (*Table, []Check, error) {
	w, err := NewBulletWorld(BulletConfig{Profile: hwmodel.AmoebaProfile(), DiskBlocks: 32 * 1024, Inodes: 4000})
	if err != nil {
		return nil, nil, err
	}
	t := &Table{
		Title:   "A3: external fragmentation under churn (16 MB data area)",
		Unit:    "percent/blocks",
		Columns: []string{"USED%", "FRAG%", "LARGEST"},
	}
	// Churn: create files of mixed sizes, delete a pseudo-random half,
	// repeat. Sizes follow the paper's observation that most files are
	// small (median 1 KB) with a tail of large ones.
	sizes := []int{512, 1024, 1024, 2048, 4096, 8192, 65536, 262144}
	var live []capability.Capability
	seq := 0
	for round := 1; round <= 6; round++ {
		for i := 0; i < 60; i++ {
			size := sizes[seq%len(sizes)]
			c, err := w.Client.Create(w.Port, pattern(size), 2)
			if err != nil {
				// Disk full mid-churn is part of the story; stop filling.
				break
			}
			live = append(live, c)
			seq++
		}
		// Delete roughly half, scattered across the allocation order.
		kept := live[:0]
		for i, c := range live {
			if (i*2654435761)%100 < 50 {
				if err := w.Client.Delete(c); err != nil {
					return nil, nil, err
				}
				continue
			}
			kept = append(kept, c)
		}
		live = kept

		st := w.Engine.DiskStats()
		t.Rows = append(t.Rows, RowT{
			Label: fmt.Sprintf("round %d", round),
			Values: []float64{
				100 * float64(st.Used) / float64(st.Total),
				100 * st.Fragmentation(),
				float64(st.LargestFree),
			},
		})
	}
	before := w.Engine.DiskStats()
	if err := w.Client.CompactDisk(w.Port); err != nil {
		return nil, nil, err
	}
	after := w.Engine.DiskStats()
	t.Rows = append(t.Rows, RowT{
		Label: "compacted",
		Values: []float64{
			100 * float64(after.Used) / float64(after.Total),
			100 * after.Fragmentation(),
			float64(after.LargestFree),
		},
	})
	checks := []Check{
		{
			ID:    "A3a",
			Claim: "churn fragments the contiguous store",
			Detail: fmt.Sprintf("fragmentation %.0f%% before compaction",
				100*before.Fragmentation()),
			Pass: before.Fragmentation() > 0.1,
		},
		{
			ID:    "A3b",
			Claim: "compaction restores one maximal hole",
			Detail: fmt.Sprintf("largest free %d -> %d blocks, fragmentation %.0f%% -> %.0f%%",
				before.LargestFree, after.LargestFree,
				100*before.Fragmentation(), 100*after.Fragmentation()),
			Pass: after.Fragmentation() == 0 && after.LargestFree >= before.LargestFree,
		},
	}
	// All surviving files still readable after the great slide.
	for _, c := range live {
		if _, err := w.Client.Read(c); err != nil {
			checks = append(checks, Check{
				ID: "A3c", Claim: "files survive compaction",
				Detail: err.Error(), Pass: false,
			})
			return t, checks, nil
		}
	}
	checks = append(checks, Check{
		ID: "A3c", Claim: "files survive compaction",
		Detail: fmt.Sprintf("all %d surviving files intact", len(live)), Pass: true,
	})
	return t, checks, nil
}

// RunCacheExp regenerates experiment A4: read delay and hit rate as the
// working set grows past the server's RAM cache — the regime where the
// whole-file cache stops absorbing the disk (paper §3's LRU machinery).
func RunCacheExp() (*Table, []Check, error) {
	const cacheBytes = 1 << 20 // 1 MB cache for a fast sweep
	const fileSize = 64 << 10  // 64 KB files
	t := &Table{
		Title:   "A4: whole-file cache under growing working sets (1 MB cache, 64 KB files)",
		Unit:    "msec/percent",
		Columns: []string{"READ-MS", "HIT%"},
	}
	var smallDelay, bigDelay float64
	for _, files := range []int{4, 8, 16, 32, 64} {
		w, err := NewBulletWorld(BulletConfig{
			Profile:    hwmodel.AmoebaProfile(),
			CacheBytes: cacheBytes,
			DiskBlocks: 64 * 1024,
		})
		if err != nil {
			return nil, nil, err
		}
		caps := make([]capability.Capability, files)
		for i := range caps {
			c, err := w.Client.Create(w.Port, pattern(fileSize), 2)
			if err != nil {
				return nil, nil, err
			}
			caps[i] = c
		}
		statsBefore := w.Engine.Stats()
		var total time.Duration
		reads := 0
		for round := 0; round < 3; round++ {
			for _, c := range caps {
				d, err := Measure(w.Clock, func() error {
					_, err := w.Client.Read(c)
					return err
				})
				if err != nil {
					return nil, nil, err
				}
				total += d
				reads++
			}
		}
		st := w.Engine.Stats()
		hits := st.CacheHits - statsBefore.CacheHits
		misses := st.CacheMisses - statsBefore.CacheMisses
		hitRate := 100 * float64(hits) / float64(hits+misses)
		mean := msec(total / time.Duration(reads))
		t.Rows = append(t.Rows, RowT{
			Label:  fmt.Sprintf("%d files", files),
			Values: []float64{mean, hitRate},
		})
		if files == 4 {
			smallDelay = mean
		}
		if files == 64 {
			bigDelay = mean
		}
	}
	checks := []Check{{
		ID:    "A4",
		Claim: "reads slow down once the working set exceeds the RAM cache",
		Detail: fmt.Sprintf("64 KB read: %.1f ms in-cache vs %.1f ms thrashing",
			smallDelay, bigDelay),
		Pass: bigDelay > smallDelay*1.3,
	}}
	return t, checks, nil
}
