package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bulletfs/internal/bullet"
	"bulletfs/internal/cache"
	"bulletfs/internal/disk"
)

// This experiment validates the concurrent read path with deterministic
// counters rather than virtual-clock latencies: the virtual clock is
// additive and single-threaded, so "parallel time" cannot be charged to
// it. What CAN be measured exactly is the work the concurrency machinery
// saves or overlaps — disk reads coalesced by the fault singleflight, the
// replica fanout the committer waits on versus what settles in the
// background, and compactions deferred by pinned cache views.

// parallelGate parks ReadAt calls while armed so the experiment can hold
// a fault leader mid-read and pile concurrent misses onto it.
type parallelGate struct {
	disk.Device
	armed   atomic.Bool
	entered chan struct{}
	release chan struct{}
}

func (d *parallelGate) ReadAt(p []byte, off int64) error {
	if d.armed.Load() {
		select {
		case d.entered <- struct{}{}:
		default:
		}
		<-d.release
	}
	return d.Device.ReadAt(p, off)
}

// parallelHung parks WriteAt calls until release is closed: the quorum
// measurement's deliberately slow replica.
type parallelHung struct {
	disk.Device
	release chan struct{}
}

func (d *parallelHung) WriteAt(p []byte, off int64) error {
	<-d.release
	return d.Device.WriteAt(p, off)
}

// RunParallelExp measures the concurrent read path added for multi-client
// service: fault singleflight, parallel replica commit, and pinned-view
// compaction deference. Every reported cell is a deterministic counter.
func RunParallelExp() (*Table, []Check, error) {
	tab := &Table{
		Title:   "Concurrent read path (deterministic counters)",
		Unit:    "count",
		Columns: []string{"VALUE"},
	}
	var checks []Check
	row := func(label string, v float64) {
		tab.Rows = append(tab.Rows, RowT{Label: label, Values: []float64{v}})
	}

	// --- Fault singleflight: 8 cold readers, one disk read. -------------
	const readers = 8
	mem, err := disk.NewMem(512, 4096)
	if err != nil {
		return nil, nil, err
	}
	gate := &parallelGate{Device: mem, entered: make(chan struct{}, 1), release: make(chan struct{})}
	set, err := disk.NewReplicaSet(gate)
	if err != nil {
		return nil, nil, err
	}
	if err := bullet.Format(set, 100); err != nil {
		return nil, nil, err
	}
	warm, err := bullet.New(set, bullet.Options{CacheBytes: 1 << 20})
	if err != nil {
		return nil, nil, err
	}
	data := pattern(64 << 10)
	c, err := warm.Create(data, 1)
	if err != nil {
		return nil, nil, err
	}
	warm.Sync()
	// Restarting over the same disks discards the RAM cache, so the next
	// reads all miss.
	cold, err := bullet.New(set, bullet.Options{Port: warm.Port(), CacheBytes: 1 << 20})
	if err != nil {
		return nil, nil, err
	}
	baseReads := set.Reads(0)
	gate.armed.Store(true)
	errs := make(chan error, readers)
	var wg sync.WaitGroup
	read := func() {
		got, rerr := cold.Read(c)
		if rerr == nil && len(got) != len(data) {
			rerr = fmt.Errorf("short read: %d of %d", len(got), len(data))
		}
		errs <- rerr
	}
	wg.Add(1)
	go func() { // the leader parks inside its disk read
		defer wg.Done()
		read()
	}()
	<-gate.entered
	started := make(chan struct{}, readers-1)
	for i := 1; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			started <- struct{}{}
			read()
		}()
	}
	for i := 1; i < readers; i++ {
		<-started
	}
	// Give the started readers time to register on the in-flight fault;
	// stragglers that miss the window are served from the cache instead
	// and cost no extra disk read either way.
	time.Sleep(200 * time.Millisecond)
	gate.armed.Store(false)
	close(gate.release)
	wg.Wait()
	for i := 0; i < readers; i++ {
		if err := <-errs; err != nil {
			return nil, nil, fmt.Errorf("bench parallel: concurrent read: %w", err)
		}
	}
	diskReads := float64(set.Reads(0) - baseReads)
	merges := cold.Stats().FaultMerges
	row("singleflight disk reads", diskReads)
	checks = append(checks, Check{
		ID:    "P1",
		Claim: fmt.Sprintf("%d concurrent cold reads of one file cost one disk read", readers),
		Detail: fmt.Sprintf("disk reads %.0f, merged waiters %d of %d",
			diskReads, merges, readers-1),
		Pass: diskReads == 1 && merges >= 1,
	})

	// --- Parallel commit: fanout accounting. ----------------------------
	// Plain RAM disks, no virtual clock: the clock is additive and cannot
	// express overlapping replica writes, but the fanout counters can.
	const commits = 16
	cdevs := make([]disk.Device, 2)
	for i := range cdevs {
		m, err := disk.NewMem(512, 4096)
		if err != nil {
			return nil, nil, err
		}
		cdevs[i] = m
	}
	cset, err := disk.NewReplicaSet(cdevs...)
	if err != nil {
		return nil, nil, err
	}
	if err := bullet.Format(cset, 100); err != nil {
		return nil, nil, err
	}
	eng, err := bullet.New(cset, bullet.Options{CacheBytes: 1 << 20})
	if err != nil {
		return nil, nil, err
	}
	base := eng.Metrics().Snapshot().Gauges
	for i := 0; i < commits; i++ {
		if _, err := eng.Create(pattern(4096), 2); err != nil {
			return nil, nil, err
		}
	}
	// Snapshot before Sync: the counters are live atomics and the commit
	// fan-outs are synchronous, while Sync adds a housekeeping write of
	// its own (the batched checksum flush) that is not a commit.
	cur := eng.Metrics().Snapshot().Gauges
	eng.Sync()
	pc := float64(cur["disk.parallel_commits"] - base["disk.parallel_commits"])
	fan := float64(cur["disk.parallel_commit_fanout"] - base["disk.parallel_commit_fanout"])
	row("parallel commits", pc)
	row("commit fanout", fan)
	checks = append(checks, Check{
		ID:     "P2",
		Claim:  "a P-FACTOR 2 create waits on exactly 2 replicas",
		Detail: fmt.Sprintf("%.0f commits fanned out to %.0f synchronous replica writes", pc, fan),
		Pass:   pc == commits && fan == 2*commits,
	})

	// --- Quorum reply: Apply(1) returns while a replica is still writing.
	memA, err := disk.NewMem(512, 64)
	if err != nil {
		return nil, nil, err
	}
	memB, err := disk.NewMem(512, 64)
	if err != nil {
		return nil, nil, err
	}
	release := make(chan struct{})
	slow := &parallelHung{Device: memB, release: release}
	qset, err := disk.NewReplicaSet(memA, slow)
	if err != nil {
		return nil, nil, err
	}
	if err := qset.Apply(1, func(i int, dev disk.Device) error {
		return dev.WriteAt([]byte("quorum"), 0)
	}); err != nil {
		return nil, nil, fmt.Errorf("bench parallel: quorum apply: %w", err)
	}
	pendingAtReply := float64(qset.Writes(0) - qset.Writes(1))
	close(release)
	qset.Drain()
	settled := float64(qset.Writes(1))
	row("quorum reply before slow replica", pendingAtReply)
	row("background write settled by drain", settled)
	checks = append(checks, Check{
		ID:    "P3",
		Claim: "commit latency is the max of the quorum, not the sum of all replicas",
		Detail: fmt.Sprintf("replied with %.0f write still in flight; drain settled it (%.0f)",
			pendingAtReply, settled),
		Pass: pendingAtReply == 1 && settled == 1,
	})

	// --- Pinned views: compaction defers to in-flight readers. ----------
	ca, err := cache.New(1<<20, 16)
	if err != nil {
		return nil, nil, err
	}
	idx, _, err := ca.Insert(1, pattern(4096))
	if err != nil {
		return nil, nil, err
	}
	view, err := ca.GetView(idx, 1)
	if err != nil {
		return nil, nil, err
	}
	pinnedAtPeak := float64(ca.Stats().PinnedViews)
	if err := ca.Compact(); err != nil {
		view.Release()
		return nil, nil, err
	}
	skipped := float64(ca.Stats().CompactionsSkipped)
	view.Release()
	if err := ca.Compact(); err != nil {
		return nil, nil, err
	}
	skippedAfter := float64(ca.Stats().CompactionsSkipped)
	row("pinned views at peak", pinnedAtPeak)
	row("compactions skipped while pinned", skipped)
	checks = append(checks, Check{
		ID:    "P4",
		Claim: "cache compaction defers to pinned views and proceeds after release",
		Detail: fmt.Sprintf("pinned %.0f, skipped %.0f while pinned, %.0f after release",
			pinnedAtPeak, skipped, skippedAfter),
		Pass: pinnedAtPeak == 1 && skipped == 1 && skippedAfter == 1,
	})

	return tab, checks, nil
}
