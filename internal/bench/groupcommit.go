package bench

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bulletfs/internal/bullet"
	"bulletfs/internal/capability"
	"bulletfs/internal/disk"
)

// countingDev counts physical WriteAt calls so the experiment can compare
// how many device writes N small creates cost with and without group
// commit. Deterministic counters again: the saving group commit buys —
// one inode-table write per batch instead of per create — is exactly a
// difference in write counts.
type countingDev struct {
	disk.Device
	writes *atomic.Int64
}

func (d *countingDev) WriteAt(p []byte, off int64) error {
	d.writes.Add(1)
	return d.Device.WriteAt(p, off)
}

// gcWorld builds a two-replica engine over counting devices.
func gcWorld(window time.Duration, batch int) (*bullet.Server, *atomic.Int64, error) {
	var writes atomic.Int64
	devs := make([]disk.Device, 2)
	for i := range devs {
		mem, err := disk.NewMem(512, 16*1024)
		if err != nil {
			return nil, nil, err
		}
		devs[i] = &countingDev{Device: mem, writes: &writes}
	}
	set, err := disk.NewReplicaSet(devs...)
	if err != nil {
		return nil, nil, err
	}
	if err := bullet.Format(set, 100); err != nil {
		return nil, nil, err
	}
	eng, err := bullet.New(set, bullet.Options{
		CacheBytes:        4 << 20,
		GroupCommitWindow: window,
		GroupCommitBatch:  batch,
	})
	if err != nil {
		return nil, nil, err
	}
	return eng, &writes, nil
}

// RunGroupCommit measures what group commit saves on a burst of small
// creates: device writes and replica sync round-trips, solo versus
// grouped, contents verified afterwards.
func RunGroupCommit() (*Table, []Check, error) {
	const (
		creates  = 16
		fileSize = 4096
	)
	tab := &Table{
		Title:   "Group-committed creates, 16 x 4 Kbyte burst (deterministic counters)",
		Unit:    "count",
		Columns: []string{"VALUE"},
	}
	var checks []Check
	row := func(label string, v float64) {
		tab.Rows = append(tab.Rows, RowT{Label: label, Values: []float64{v}})
	}
	payload := func(k int) []byte {
		data := pattern(fileSize)
		data[0] = byte(k)
		return data
	}

	// --- Solo: every create pays its own fan-out. -----------------------
	solo, soloWrites, err := gcWorld(0, 0)
	if err != nil {
		return nil, nil, err
	}
	for k := 0; k < creates; k++ {
		if _, err := solo.Create(payload(k), 1); err != nil {
			return nil, nil, err
		}
	}
	solo.Sync()
	soloTotal := soloWrites.Load()

	// --- Grouped: a far-future window with the batch cap at the burst
	// size, so the burst forces exactly one shared flush. The creates must
	// be genuinely concurrent — each blocks on its own P-FACTOR quorum,
	// which only the full batch's flush satisfies.
	grouped, groupWrites, err := gcWorld(time.Hour, creates)
	if err != nil {
		return nil, nil, err
	}
	caps := make([]capability.Capability, creates)
	errs := make([]error, creates)
	var wg sync.WaitGroup
	for k := 0; k < creates; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			caps[k], errs[k] = grouped.Create(payload(k), 1)
		}(k)
	}
	wg.Wait()
	for k, err := range errs {
		if err != nil {
			return nil, nil, fmt.Errorf("bench groupcommit: grouped create %d: %w", k, err)
		}
	}
	grouped.Sync()
	groupTotal := groupWrites.Load()
	g := grouped.Metrics().Snapshot().Gauges
	batches := g["disk.group_commit_batches"]
	entries := g["disk.group_commit_entries"]
	forced := g["disk.group_commit_forced"]

	verified := 0
	for k, c := range caps {
		got, err := grouped.Read(c)
		if err == nil && bytes.Equal(got, payload(k)) {
			verified++
		}
	}

	row("solo device writes", float64(soloTotal))
	row("grouped device writes", float64(groupTotal))
	row("grouped batches", float64(batches))
	row("grouped entries", float64(entries))
	row("forced flushes", float64(forced))
	row("files verified", float64(verified))

	checks = append(checks, Check{
		ID:    "G1",
		Claim: fmt.Sprintf("group commit writes less: %d creates share the inode-table writes", creates),
		Detail: fmt.Sprintf("solo %d device writes, grouped %d (%d saved)",
			soloTotal, groupTotal, soloTotal-groupTotal),
		Pass: groupTotal < soloTotal,
	})
	checks = append(checks, Check{
		ID:    "G2",
		Claim: "the whole burst shares one replica sync round-trip",
		Detail: fmt.Sprintf("%d entries in %d batch (forced %d); solo pays %d fan-outs",
			entries, batches, forced, creates),
		Pass: batches == 1 && entries == creates && forced == 1,
	})
	checks = append(checks, Check{
		ID:     "G3",
		Claim:  "batched durability changes nothing a reader can see",
		Detail: fmt.Sprintf("%d of %d grouped files read back intact", verified, creates),
		Pass:   verified == creates,
	})
	return tab, checks, nil
}
