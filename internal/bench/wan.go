package bench

import (
	"fmt"

	"bulletfs/internal/hwmodel"
)

// RunWAN quantifies the paper's "geographic scalability" argument (§2,
// and the MANDIS deployment across four countries) in the regime where it
// bites: a long fat network (100 Mbit/s, ~80 ms RTT). Whole-file transfer
// pays the round trip once; the block protocol pays it once per 8 KB —
// across distance that difference is not a factor, it is orders of
// magnitude. (On the era's kilobit leased lines both designs were
// bandwidth-bound; the effect grows as pipes get fatter.)
func RunWAN() (*Table, []Check, error) {
	profile := hwmodel.WANProfile()

	bw, err := NewBulletWorld(BulletConfig{Profile: profile})
	if err != nil {
		return nil, nil, err
	}
	nw, err := NewNFSWorld(NFSConfig{
		Profile:     profile,
		AllocStride: 1,
		Residency:   -1, // isolate the network effect: warm, idle server
	})
	if err != nil {
		return nil, nil, err
	}
	root, err := nw.Client.Root()
	if err != nil {
		return nil, nil, err
	}

	t := &Table{
		Title:   "WAN: whole-file vs per-block across a long fat network (100 Mbit/s, 80 ms RTT; read delay)",
		Unit:    "msec",
		Columns: []string{"BULLET", "BLOCK", "RATIO"},
	}
	var ratio1MB float64
	for si, size := range PaperSizes {
		data := pattern(size)
		cap0, err := bw.Client.Create(bw.Port, data, 2)
		if err != nil {
			return nil, nil, err
		}
		bRead, err := Measure(bw.Clock, func() error {
			if _, err := bw.Client.Size(cap0); err != nil {
				return err
			}
			_, err := bw.Client.Read(cap0)
			return err
		})
		if err != nil {
			return nil, nil, err
		}
		if err := bw.Client.Delete(cap0); err != nil {
			return nil, nil, err
		}

		name := fmt.Sprintf("wan-%d", si)
		h, err := nw.Client.CreateWrite(root, name, data)
		if err != nil {
			return nil, nil, err
		}
		if _, err := nw.Client.ReadAll(h); err != nil { // warm pass
			return nil, nil, err
		}
		nRead, err := Measure(nw.Clock, func() error {
			_, err := nw.Client.ReadAll(h)
			return err
		})
		if err != nil {
			return nil, nil, err
		}

		r := float64(nRead) / float64(bRead)
		if size == 1<<20 {
			ratio1MB = r
		}
		t.Rows = append(t.Rows, RowT{
			Label:  SizeLabel(size),
			Values: []float64{msec(bRead), msec(nRead), r},
		})
	}
	checks := []Check{{
		ID:    "W1",
		Claim: "across a WAN the per-block protocol collapses; whole-file transfer does not",
		Detail: fmt.Sprintf("1 MB read ratio %.1fx (each 8 KB block pays the %v round trip)",
			ratio1MB, profile.Net.PerRPCOverhead),
		Pass: ratio1MB >= 10,
	}}
	return t, checks, nil
}
