package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Results accumulates a machine-readable view of one benchmark run: every
// table cell under a stable flat key ("f2.delay/1_byte/Read"), every shape
// check as "check/<ID>" with 1 for pass and 0 for fail. The flat map keeps
// CI diffing trivial: compare values key by key, no structure to walk.
type Results struct {
	Values map[string]float64 `json:"values"`
}

// NewResults returns an empty collector.
func NewResults() *Results {
	return &Results{Values: make(map[string]float64)}
}

// keyPart normalizes a label for use in a result key: spaces become
// underscores so keys stay greppable and shell-safe.
func keyPart(s string) string {
	return strings.ReplaceAll(strings.TrimSpace(s), " ", "_")
}

// AddTable records every cell of t under prefix/<row>/<column>.
func (r *Results) AddTable(prefix string, t *Table) {
	if t == nil {
		return
	}
	for _, row := range t.Rows {
		for i, v := range row.Values {
			col := fmt.Sprintf("col%d", i)
			if i < len(t.Columns) {
				col = keyPart(t.Columns[i])
			}
			r.Values[prefix+"/"+keyPart(row.Label)+"/"+col] = v
		}
	}
}

// AddChecks records each check verdict under check/<ID>: 1 pass, 0 fail.
func (r *Results) AddChecks(checks []Check) {
	for _, c := range checks {
		v := 0.0
		if c.Pass {
			v = 1.0
		}
		r.Values["check/"+keyPart(c.ID)] = v
	}
}

// WriteJSON emits the results as deterministic (sorted-key) indented JSON.
func (r *Results) WriteJSON(w io.Writer) error {
	// encoding/json already sorts map keys; MarshalIndent keeps the file
	// diffable in review.
	body, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: encoding results: %w", err)
	}
	if _, err := w.Write(append(body, '\n')); err != nil {
		return fmt.Errorf("bench: writing results: %w", err)
	}
	return nil
}

// ReadResults parses a Results JSON document (the inverse of WriteJSON).
func ReadResults(data []byte) (*Results, error) {
	var r Results
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: decoding results: %w", err)
	}
	if r.Values == nil {
		r.Values = make(map[string]float64)
	}
	return &r, nil
}

// Keys returns the sorted result keys.
func (r *Results) Keys() []string {
	keys := make([]string, 0, len(r.Values))
	for k := range r.Values {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
