package bench

import (
	"bytes"
	"errors"
	"fmt"

	"bulletfs/internal/bullet"
	"bulletfs/internal/bulletsvc"
	"bulletfs/internal/disk"
	"bulletfs/internal/rpc"
)

// This experiment proves the zero-copy reply path with deterministic
// counters, like the parallel experiment: the engine counts every payload
// copy its read path performs (bullet.read_copies), so "zero copies" is a
// counter reading zero, not a timing inference. The legacy Read API must
// copy the pinned cache bytes before the pin is released; the streamed
// dispatch path hands the pinned bytes themselves to the frame sink and
// releases the pin after the write.

// errCorruptRead reports a read that returned the wrong bytes.
var errCorruptRead = errors.New("read returned wrong bytes")

// RunZeroCopy measures payload copies on the cached-read reply path:
// the legacy copying Read versus single-frame streamed READ versus
// chunked READSTREAM, all against one 1 MB cached file.
func RunZeroCopy() (*Table, []Check, error) {
	const (
		fileSize    = 1 << 20
		reads       = 8
		streamChunk = 256 << 10 // the service's default READSTREAM chunk
	)
	tab := &Table{
		Title:   "Zero-copy reply path, 1 Mbyte cached file (deterministic counters)",
		Unit:    "count",
		Columns: []string{"VALUE"},
	}
	var checks []Check
	row := func(label string, v float64) {
		tab.Rows = append(tab.Rows, RowT{Label: label, Values: []float64{v}})
	}

	devs := make([]disk.Device, 2)
	for i := range devs {
		mem, err := disk.NewMem(512, 16*1024)
		if err != nil {
			return nil, nil, err
		}
		devs[i] = mem
	}
	set, err := disk.NewReplicaSet(devs...)
	if err != nil {
		return nil, nil, err
	}
	if err := bullet.Format(set, 100); err != nil {
		return nil, nil, err
	}
	eng, err := bullet.New(set, bullet.Options{CacheBytes: 8 << 20})
	if err != nil {
		return nil, nil, err
	}
	data := pattern(fileSize)
	c, err := eng.Create(data, 1)
	if err != nil {
		return nil, nil, err
	}
	eng.Sync()

	copies := func() int64 {
		return eng.Metrics().Snapshot().Counters["bullet.read_copies"]
	}
	pinned := func() int64 {
		return eng.Metrics().Snapshot().Counters["bullet.lease_pinned"]
	}

	// --- Legacy path: Read returns a fresh slice, one copy per call. ----
	base := copies()
	for i := 0; i < reads; i++ {
		got, err := eng.Read(c)
		if err != nil {
			return nil, nil, fmt.Errorf("bench zerocopy: legacy read: %w", err)
		}
		if !bytes.Equal(got, data) {
			return nil, nil, fmt.Errorf("bench zerocopy: legacy read: %w", errCorruptRead)
		}
	}
	legacyCopies := copies() - base

	// --- Streamed path: the same reads through the stream dispatcher. ---
	// Single-frame READ replies borrow the pinned cache bytes; READSTREAM
	// cuts chunked frames off one pin. txid 0 keeps the dedup cache out of
	// the picture (a tracked single-frame reply would add one
	// copy-on-retain by design — that copy is accounted separately in
	// rpc.dedup_copied_bytes).
	mux := rpc.NewMux(0)
	bulletsvc.New(eng).Register(mux)
	base = copies()
	basePinned := pinned()
	var streamBytes, frames int64
	sink := func(h rpc.Header, p []byte, last bool) error {
		if h.Status != rpc.StatusOK {
			return fmt.Errorf("frame status %d", h.Status)
		}
		streamBytes += int64(len(p))
		frames++
		return nil
	}
	for i := 0; i < reads; i++ {
		if err := mux.DispatchStream(nil, eng.Port(), 0, rpc.Header{Command: bulletsvc.CmdRead, Cap: c}, nil, sink); err != nil {
			return nil, nil, fmt.Errorf("bench zerocopy: streamed read: %w", err)
		}
	}
	singleFrames := frames
	for i := 0; i < reads; i++ {
		if err := mux.DispatchStream(nil, eng.Port(), 0, rpc.Header{Command: bulletsvc.CmdReadStream, Cap: c}, nil, sink); err != nil {
			return nil, nil, fmt.Errorf("bench zerocopy: readstream: %w", err)
		}
	}
	streamCopies := copies() - base
	streamPinned := pinned() - basePinned
	pinsAfter := mux.PinsHeld()
	owned := mux.OwnedReplies()

	row("legacy read copies", float64(legacyCopies))
	row("streamed read copies", float64(streamCopies))
	row("streamed reads pinned", float64(streamPinned))
	row("streamed frames", float64(frames))
	row("streamed Mbytes", float64(streamBytes)/float64(1<<20))
	row("zero-copy frames served", float64(owned))
	row("pins held after", float64(pinsAfter))

	wantBytes := int64(2 * reads * fileSize)
	checks = append(checks, Check{
		ID:    "Z1",
		Claim: "a cached streamed read moves zero payload copies; the legacy API copies once per read",
		Detail: fmt.Sprintf("legacy %d copies / %d reads; streamed %d copies / %d reads (%d bytes delivered)",
			legacyCopies, reads, streamCopies, 2*reads, streamBytes),
		Pass: legacyCopies == reads && streamCopies == 0 && streamBytes == wantBytes,
	})
	checks = append(checks, Check{
		ID:    "Z2",
		Claim: "the streamed path halves reply memory traffic in the 1 MB read regime",
		Detail: fmt.Sprintf("legacy touches each payload byte twice (copy out of the pin, then the write); streamed once — %d READ replies handed their cache pin to the writer, READSTREAM cut %d chunked frames per file off one pin",
			owned, (frames-singleFrames)/reads),
		Pass: owned == singleFrames && streamPinned == 2*reads &&
			frames-singleFrames == reads*(fileSize/streamChunk),
	})
	cachePins := eng.Metrics().Snapshot().Gauges["cache.pinned_views"]
	checks = append(checks, Check{
		ID:     "Z3",
		Claim:  "pin accounting returns to zero after the replies are written",
		Detail: fmt.Sprintf("rpc pins held %d, cache pinned views %d", pinsAfter, cachePins),
		Pass:   pinsAfter == 0 && cachePins == 0,
	})
	return tab, checks, nil
}
