// Package bench regenerates the paper's evaluation (§4): the Bullet
// performance tables (Fig. 2), the SUN NFS comparison tables (Fig. 3), the
// textual comparison claims, and the ablations DESIGN.md calls out. All
// experiments run on the virtual clock: the simulated Ethernet
// (internal/simnet) and simulated disks (internal/disk.SimDisk) charge
// calibrated costs (internal/hwmodel) while every payload byte really
// moves through the full client/RPC/server/cache/disk stack.
package bench

import (
	"fmt"
	"strings"
	"time"

	"bulletfs/internal/bullet"
	"bulletfs/internal/bulletsvc"
	"bulletfs/internal/capability"
	"bulletfs/internal/client"
	"bulletfs/internal/disk"
	"bulletfs/internal/hwmodel"
	"bulletfs/internal/nfs"
	"bulletfs/internal/rpc"
	"bulletfs/internal/simnet"
)

// PaperSizes is the file-size sweep of Figs. 2 and 3. The OCR of the
// supplied paper text lost the interior row labels; this is the canonical
// 1 B .. 1 MB six-point sweep (EXPERIMENTS.md records the assumption).
var PaperSizes = []int{1, 16, 256, 4 * 1024, 64 * 1024, 1 << 20}

// SizeLabel renders a size the way the paper's tables do.
func SizeLabel(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%d Mbyte", n/(1<<20))
	case n >= 1024 && n%1024 == 0:
		return fmt.Sprintf("%d Kbytes", n/1024)
	case n == 1:
		return "1 byte"
	default:
		return fmt.Sprintf("%d bytes", n)
	}
}

// Table is one paper-style table: rows of labelled values.
type Table struct {
	Title   string
	Unit    string
	Columns []string
	Rows    []RowT
	// RowHeader labels the row column; empty means the classic "File Size".
	RowHeader string
}

// RowT is one table row.
type RowT struct {
	Label  string
	Values []float64
}

// Format renders the table as aligned text, millisecond values with two
// decimals, bandwidths as integers.
func (t Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s)\n", t.Title, t.Unit)
	width := 14
	header := t.RowHeader
	if header == "" {
		header = "File Size"
	}
	fmt.Fprintf(&b, "%-12s", header)
	for _, c := range t.Columns {
		fmt.Fprintf(&b, "%*s", width, c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-12s", r.Label)
		for _, v := range r.Values {
			if t.Unit == "msec" {
				fmt.Fprintf(&b, "%*.2f", width, v)
			} else {
				fmt.Fprintf(&b, "%*.0f", width, v)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Check is one pass/fail shape assertion against the paper's claims.
type Check struct {
	ID     string
	Claim  string
	Detail string
	Pass   bool
}

// Format renders a check result line.
func (c Check) Format() string {
	mark := "PASS"
	if !c.Pass {
		mark = "FAIL"
	}
	return fmt.Sprintf("[%s] %s: %s — %s", mark, c.ID, c.Claim, c.Detail)
}

// msec converts a duration to the paper's millisecond unit.
func msec(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// kbps computes the paper's KB/s bandwidth figure for moving size bytes in d.
func kbps(size int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(size) / 1024 / d.Seconds()
}

// pattern builds a deterministic payload.
func pattern(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(i*31 + 7)
	}
	return out
}

// BulletWorld is a simulated Bullet deployment: engine on two simulated
// disks, service on a simulated Ethernet, client without client caching
// (the paper measured server performance).
type BulletWorld struct {
	Clock  *hwmodel.Clock
	Net    *simnet.Net
	Client *client.Client
	Engine *bullet.Server
	Port   capability.Port

	// Service is the RPC-facing service wrapper around Engine.
	Service *bulletsvc.Service
	// Admission is the service's in-flight limiter; nil unless the world
	// was built with an AdmissionLimit.
	Admission *bulletsvc.Admission
}

// BulletConfig sizes a BulletWorld.
type BulletConfig struct {
	Profile    hwmodel.Profile
	Replicas   int
	DiskBlocks int64 // per replica, 512-byte sectors (default 64k = 32 MB)
	CacheBytes int64 // server RAM cache (default 8 MB)
	Inodes     int
	// AdmissionLimit bounds concurrent file operations at the service;
	// past it requests are shed with StatusBusy (0 = unlimited).
	AdmissionLimit int
}

// NewBulletWorld builds and formats a simulated Bullet deployment.
func NewBulletWorld(cfg BulletConfig) (*BulletWorld, error) {
	if cfg.Replicas == 0 {
		cfg.Replicas = 2
	}
	if cfg.DiskBlocks == 0 {
		cfg.DiskBlocks = 64 * 1024 // 32 MB per disk
	}
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = 8 << 20
	}
	if cfg.Inodes == 0 {
		cfg.Inodes = 2000
	}
	clock := &hwmodel.Clock{}
	devs := make([]disk.Device, cfg.Replicas)
	for i := range devs {
		mem, err := disk.NewMem(512, cfg.DiskBlocks)
		if err != nil {
			return nil, err
		}
		devs[i] = disk.NewSim(mem, cfg.Profile.Disk, clock)
	}
	set, err := disk.NewReplicaSet(devs...)
	if err != nil {
		return nil, err
	}
	if err := bullet.Format(set, cfg.Inodes); err != nil {
		return nil, err
	}
	eng, err := bullet.New(set, bullet.Options{CacheBytes: cfg.CacheBytes})
	if err != nil {
		return nil, err
	}
	mux := rpc.NewMux(0)
	svc := bulletsvc.New(eng)
	var adm *bulletsvc.Admission
	if cfg.AdmissionLimit > 0 {
		adm = bulletsvc.NewAdmission(cfg.AdmissionLimit)
		adm.AttachMetrics(eng.Metrics())
		svc.AttachAdmission(adm)
	}
	svc.Register(mux)
	net := simnet.New(mux, clock, cfg.Profile.Net, cfg.Profile.CPU)
	return &BulletWorld{
		Clock:     clock,
		Net:       net,
		Client:    client.New(net),
		Engine:    eng,
		Port:      eng.Port(),
		Service:   svc,
		Admission: adm,
	}, nil
}

// Measure runs op and returns the virtual time it consumed.
func Measure(clock *hwmodel.Clock, op func() error) (time.Duration, error) {
	start := clock.Now()
	err := op()
	return clock.Since(start), err
}

// NFSWorld is a simulated SunOS NFS deployment: block server on one
// simulated disk, per-block RPCs on the simulated Ethernet, no client
// caching (the paper disabled it with lockf).
//
// ResidencyWindow models the working-set pressure of the rest of the
// department on the shared production server (the paper idled only the
// *client*): blocks stay in the 3 MB buffer cache for roughly this long
// before other traffic cycles them out. Operations shorter than the window
// run warm (small files); an operation longer than the window finds its
// blocks evicted again by the next iteration (the 1 MB rows) — which is
// what bends the NFS curve down at 1 MB in Fig. 3.
type NFSWorld struct {
	Clock  *hwmodel.Clock
	Net    *simnet.Net
	Client *nfs.Client
	Server *nfs.Server
	Port   capability.Port

	ResidencyWindow time.Duration
	lastChurn       time.Duration
}

// NFSConfig sizes an NFSWorld.
type NFSConfig struct {
	Profile     hwmodel.Profile
	DiskBlocks  int64 // 512-byte sectors (default 128k = 64 MB)
	CacheBytes  int64 // buffer cache (default 3 MB, the paper's server)
	AllocStride int   // block-allocation scatter (default 7: aged FS)
	// Residency is how long a cached block survives the production load
	// (default 2.5 s). Zero uses the default; negative disables churn
	// (an idle, dedicated server — used by the ablation).
	Residency time.Duration
}

// NewNFSWorld builds and formats a simulated NFS deployment.
func NewNFSWorld(cfg NFSConfig) (*NFSWorld, error) {
	if cfg.DiskBlocks == 0 {
		cfg.DiskBlocks = 128 * 1024 // 64 MB
	}
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = 3 << 20
	}
	if cfg.AllocStride == 0 {
		cfg.AllocStride = 7
	}
	switch {
	case cfg.Residency == 0:
		cfg.Residency = 2500 * time.Millisecond
	case cfg.Residency < 0:
		cfg.Residency = 0 // disabled
	}
	clock := &hwmodel.Clock{}
	mem, err := disk.NewMem(512, cfg.DiskBlocks)
	if err != nil {
		return nil, err
	}
	dev := disk.NewSim(mem, cfg.Profile.Disk, clock)
	if err := nfs.Format(dev, nfs.FormatConfig{}); err != nil {
		return nil, err
	}
	srv, err := nfs.Mount(dev, nfs.Options{CacheBytes: cfg.CacheBytes, AllocStride: cfg.AllocStride})
	if err != nil {
		return nil, err
	}
	mux := rpc.NewMux(0)
	port := capability.PortFromString("nfs-bench")
	nfs.NewService(srv, port).Register(mux)
	net := simnet.New(mux, clock, cfg.Profile.Net, cfg.Profile.CPU)
	return &NFSWorld{
		Clock:           clock,
		Net:             net,
		Client:          nfs.NewClient(net, port),
		Server:          srv,
		Port:            port,
		ResidencyWindow: cfg.Residency,
		lastChurn:       clock.Now(),
	}, nil
}

// Churn applies the production-load eviction rule: if more virtual time
// has passed since the previous call than the residency window, the other
// clients of the shared server have cycled the buffer cache — everything
// cached is gone.
func (w *NFSWorld) Churn() {
	now := w.Clock.Now()
	elapsed := now - w.lastChurn
	w.lastChurn = now
	if w.ResidencyWindow <= 0 || elapsed <= w.ResidencyWindow {
		return
	}
	w.Server.EvictCache(w.Server.CachedBlocks())
}
