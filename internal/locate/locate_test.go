package locate

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"bulletfs/internal/bullet"
	"bulletfs/internal/bulletsvc"
	"bulletfs/internal/capability"
	"bulletfs/internal/client"
	"bulletfs/internal/disk"
	"bulletfs/internal/rpc"
)

func TestRegistryBasics(t *testing.T) {
	s := NewServer("registry")
	p1 := capability.PortFromString("svc1")
	p2 := capability.PortFromString("svc2")
	s.Register(p1, "host1:7001")
	s.Register(p2, "host2:7002")

	addr, err := s.Resolve(p1)
	if err != nil || addr != "host1:7001" {
		t.Fatalf("Resolve = %q, %v", addr, err)
	}
	if _, err := s.Resolve(capability.PortFromString("ghost")); !errors.Is(err, ErrUnknownPort) {
		t.Fatalf("Resolve(ghost) err = %v", err)
	}
	if len(s.Entries()) != 2 {
		t.Fatalf("Entries = %v", s.Entries())
	}
	s.Unregister(p1)
	if _, err := s.Resolve(p1); !errors.Is(err, ErrUnknownPort) {
		t.Fatalf("Resolve after unregister err = %v", err)
	}
	// Re-registration overwrites (server moved).
	s.Register(p2, "host3:7002")
	addr, _ = s.Resolve(p2)
	if addr != "host3:7002" {
		t.Fatalf("Resolve after move = %q", addr)
	}
}

func TestClientOverRPC(t *testing.T) {
	s := NewServer("registry")
	mux := rpc.NewMux(0)
	s.RegisterOn(mux)
	cl := NewClient(rpc.NewLocal(mux), s.Port())

	p := capability.PortFromString("filesvc")
	if err := cl.Announce(p, "10.0.0.5:7001"); err != nil {
		t.Fatalf("Announce: %v", err)
	}
	addr, err := cl.Resolve(p)
	if err != nil || addr != "10.0.0.5:7001" {
		t.Fatalf("Resolve = %q, %v", addr, err)
	}
	entries, err := cl.List()
	if err != nil || len(entries) != 1 || entries[0].Addr != "10.0.0.5:7001" {
		t.Fatalf("List = %v, %v", entries, err)
	}

	// The client caches: a server-side change is invisible until
	// Invalidate.
	s.Register(p, "10.0.0.9:7001")
	addr, _ = cl.Resolve(p)
	if addr != "10.0.0.5:7001" {
		t.Fatalf("cached Resolve = %q", addr)
	}
	cl.Invalidate(p)
	addr, _ = cl.Resolve(p)
	if addr != "10.0.0.9:7001" {
		t.Fatalf("Resolve after invalidate = %q", addr)
	}

	if err := cl.Withdraw(p); err != nil {
		t.Fatalf("Withdraw: %v", err)
	}
	cl.Invalidate(p)
	if _, err := cl.Resolve(p); !errors.Is(err, ErrUnknownPort) {
		t.Fatalf("Resolve after withdraw err = %v", err)
	}
}

func TestHandleRejectsMalformed(t *testing.T) {
	s := NewServer("registry")
	for _, tc := range []struct {
		cmd     uint32
		payload []byte
	}{
		{CmdRegister, []byte{1, 2}},
		{CmdResolve, []byte{1, 2, 3}},
		{CmdUnregister, nil},
	} {
		rep, _ := s.Handle(rpc.Header{Command: tc.cmd}, tc.payload)
		if rep.Status != rpc.StatusBadRequest {
			t.Errorf("cmd %d status = %v", tc.cmd, rep.Status)
		}
	}
	rep, _ := s.Handle(rpc.Header{Command: 9999}, nil)
	if rep.Status != rpc.StatusBadCommand {
		t.Errorf("unknown cmd status = %v", rep.Status)
	}
}

func TestEntriesCodecRoundTrip(t *testing.T) {
	in := []Entry{
		{Port: capability.PortFromString("a"), Addr: "a:1"},
		{Port: capability.PortFromString("b"), Addr: "some.long.host.example.org:65535"},
	}
	out, err := decodeEntries(encodeEntries(in))
	if err != nil || len(out) != 2 {
		t.Fatalf("decode = %v, %v", out, err)
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("entry %d: %v != %v", i, in[i], out[i])
		}
	}
	if _, err := decodeEntries([]byte{0, 5, 1}); err == nil {
		t.Fatal("truncated entries accepted")
	}
}

// TestEndToEndDynamicResolution is the real deployment flow: a registry
// on a well-known TCP address, a Bullet server announcing itself at
// startup, and a client that finds it knowing only the registry.
func TestEndToEndDynamicResolution(t *testing.T) {
	// Registry process.
	reg := NewServer("registry")
	regMux := rpc.NewMux(0)
	reg.RegisterOn(regMux)
	regTCP := rpc.NewTCPServer(regMux)
	regAddr, err := regTCP.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("registry Listen: %v", err)
	}
	defer regTCP.Close() //nolint:errcheck // test cleanup

	// Bullet server process: serve, then announce.
	devs := make([]disk.Device, 2)
	for i := range devs {
		mem, err := disk.NewMem(512, 4096)
		if err != nil {
			t.Fatalf("NewMem: %v", err)
		}
		devs[i] = mem
	}
	set, err := disk.NewReplicaSet(devs...)
	if err != nil {
		t.Fatalf("NewReplicaSet: %v", err)
	}
	if err := bullet.Format(set, 100); err != nil {
		t.Fatalf("Format: %v", err)
	}
	eng, err := bullet.New(set, bullet.Options{CacheBytes: 1 << 20})
	if err != nil {
		t.Fatalf("bullet.New: %v", err)
	}
	defer eng.Sync()
	srvMux := rpc.NewMux(0)
	bulletsvc.New(eng).Register(srvMux)
	srvTCP := rpc.NewTCPServer(srvMux)
	srvAddr, err := srvTCP.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("bullet Listen: %v", err)
	}
	defer srvTCP.Close() //nolint:errcheck // test cleanup

	regOnly := rpc.NewTCPTransport(rpc.StaticResolver(map[capability.Port]string{
		reg.Port(): regAddr,
	}), 5*time.Second)
	defer regOnly.Close() //nolint:errcheck // test cleanup
	announcer := NewClient(regOnly, reg.Port())
	if err := announcer.Announce(eng.Port(), srvAddr); err != nil {
		t.Fatalf("Announce: %v", err)
	}

	// Client process: knows ONLY the registry address.
	clientRegTr := rpc.NewTCPTransport(rpc.StaticResolver(map[capability.Port]string{
		reg.Port(): regAddr,
	}), 5*time.Second)
	defer clientRegTr.Close() //nolint:errcheck // test cleanup
	resolver := NewClient(clientRegTr, reg.Port())
	dataTr := rpc.NewTCPTransport(resolver.Resolve, 5*time.Second)
	defer dataTr.Close() //nolint:errcheck // test cleanup
	cl := client.New(dataTr)

	payload := bytes.Repeat([]byte{0x77}, 5000)
	c, err := cl.Create(eng.Port(), payload, 2)
	if err != nil {
		t.Fatalf("Create via dynamic resolution: %v", err)
	}
	got, err := cl.Read(c)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("Read = %d bytes, %v", len(got), err)
	}
}
