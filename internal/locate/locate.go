// Package locate implements port location — the piece of Amoeba that let
// clients find "the server with port P" without configuration (paper
// §2.1: a port is "a 48-bit location-independent number ... made known to
// the server's potential clients"; the kernel located it by broadcast).
// On TCP there is no broadcast, so this package provides the standard
// substitute: a small registry service where servers register
// port → address mappings and clients resolve them, with client-side
// caching and invalidation on connection failure.
package locate

import (
	"errors"
	"fmt"
	"sync"

	"bulletfs/internal/capability"
	"bulletfs/internal/rpc"
)

// Command codes of the locate protocol.
const (
	CmdRegister   uint32 = 128 // payload: port + addr
	CmdResolve    uint32 = 129 // payload: port -> reply payload: addr
	CmdUnregister uint32 = 130 // payload: port
	CmdList       uint32 = 131 // -> reply payload: entries
)

// ErrUnknownPort means no server has registered the port.
var ErrUnknownPort = errors.New("locate: unknown port")

// Entry is one registration.
type Entry struct {
	Port capability.Port
	Addr string
}

// Server is the registry.
type Server struct {
	port capability.Port

	mu    sync.Mutex
	table map[capability.Port]string // guarded by mu
}

// NewServer builds a registry. Its own port derives from the service name
// so clients can hardcode exactly one well-known name.
func NewServer(name string) *Server {
	return &Server{
		port:  capability.PortFromString(name),
		table: make(map[capability.Port]string),
	}
}

// Port returns the registry's own (well-known) port.
func (s *Server) Port() capability.Port { return s.port }

// Register binds a server port to a TCP address.
func (s *Server) Register(p capability.Port, addr string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.table[p] = addr
}

// Unregister removes a binding.
func (s *Server) Unregister(p capability.Port) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.table, p)
}

// Resolve returns the address for a port.
func (s *Server) Resolve(p capability.Port) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	addr, ok := s.table[p]
	if !ok {
		return "", fmt.Errorf("%x: %w", p[:], ErrUnknownPort)
	}
	return addr, nil
}

// Entries lists all registrations.
func (s *Server) Entries() []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Entry, 0, len(s.table))
	for p, a := range s.table {
		out = append(out, Entry{Port: p, Addr: a})
	}
	return out
}

// RegisterOn installs the registry's RPC handler on mux.
func (s *Server) RegisterOn(mux *rpc.Mux) { mux.Register(s.port, s.Handle) }

// Handle processes one locate transaction.
func (s *Server) Handle(req rpc.Header, payload []byte) (rpc.Header, []byte) {
	switch req.Command {
	case CmdRegister:
		p, addr, err := decodePortAddr(payload)
		if err != nil {
			return rpc.ReplyErr(rpc.StatusBadRequest), nil
		}
		s.Register(p, addr)
		return rpc.ReplyOK(), nil

	case CmdResolve:
		p, err := decodePort(payload)
		if err != nil {
			return rpc.ReplyErr(rpc.StatusBadRequest), nil
		}
		addr, err := s.Resolve(p)
		if err != nil {
			return rpc.ReplyErr(rpc.StatusNotFound), nil
		}
		return rpc.ReplyOK(), []byte(addr)

	case CmdUnregister:
		p, err := decodePort(payload)
		if err != nil {
			return rpc.ReplyErr(rpc.StatusBadRequest), nil
		}
		s.Unregister(p)
		return rpc.ReplyOK(), nil

	case CmdList:
		return rpc.ReplyOK(), encodeEntries(s.Entries())

	default:
		return rpc.ReplyErr(rpc.StatusBadCommand), nil
	}
}

func encodePortAddr(p capability.Port, addr string) []byte {
	out := make([]byte, 0, capability.PortLen+len(addr))
	out = append(out, p[:]...)
	return append(out, addr...)
}

func decodePortAddr(payload []byte) (capability.Port, string, error) {
	var p capability.Port
	if len(payload) < capability.PortLen+1 {
		return p, "", rpc.ErrBadFrame
	}
	copy(p[:], payload)
	return p, string(payload[capability.PortLen:]), nil
}

func decodePort(payload []byte) (capability.Port, error) {
	var p capability.Port
	if len(payload) != capability.PortLen {
		return p, rpc.ErrBadFrame
	}
	copy(p[:], payload)
	return p, nil
}

func encodeEntries(entries []Entry) []byte {
	var out []byte
	out = append(out, byte(len(entries)>>8), byte(len(entries)))
	for _, e := range entries {
		out = append(out, e.Port[:]...)
		out = append(out, byte(len(e.Addr)))
		out = append(out, e.Addr...)
	}
	return out
}

func decodeEntries(payload []byte) ([]Entry, error) {
	if len(payload) < 2 {
		return nil, rpc.ErrBadFrame
	}
	count := int(payload[0])<<8 | int(payload[1])
	payload = payload[2:]
	out := make([]Entry, 0, count)
	for i := 0; i < count; i++ {
		if len(payload) < capability.PortLen+1 {
			return nil, rpc.ErrBadFrame
		}
		var e Entry
		copy(e.Port[:], payload)
		n := int(payload[capability.PortLen])
		payload = payload[capability.PortLen+1:]
		if len(payload) < n {
			return nil, rpc.ErrBadFrame
		}
		e.Addr = string(payload[:n])
		payload = payload[n:]
		out = append(out, e)
	}
	return out, nil
}

// Client talks to a registry and doubles as an rpc.Resolver with caching.
type Client struct {
	tr   rpc.Transport
	port capability.Port

	mu    sync.Mutex
	cache map[capability.Port]string // guarded by mu
}

// NewClient builds a registry client. tr must already be able to reach
// the registry itself (usually a TCPTransport with one static entry).
func NewClient(tr rpc.Transport, registryPort capability.Port) *Client {
	return &Client{tr: tr, port: registryPort, cache: make(map[capability.Port]string)}
}

// Announce registers a server port at addr.
func (c *Client) Announce(p capability.Port, addr string) error {
	rep, _, err := c.tr.Trans(c.port, rpc.Header{Command: CmdRegister}, encodePortAddr(p, addr))
	if err != nil {
		return fmt.Errorf("locate: announce: %w", err)
	}
	if rep.Status != rpc.StatusOK {
		return rpc.Errf(rep.Status, "announce rejected")
	}
	return nil
}

// Withdraw removes a registration.
func (c *Client) Withdraw(p capability.Port) error {
	rep, _, err := c.tr.Trans(c.port, rpc.Header{Command: CmdUnregister}, p[:])
	if err != nil {
		return fmt.Errorf("locate: withdraw: %w", err)
	}
	if rep.Status != rpc.StatusOK {
		return rpc.Errf(rep.Status, "withdraw rejected")
	}
	return nil
}

// Resolve implements rpc.Resolver: registry lookup with a positive cache.
// Call Invalidate when a cached address turns out dead.
func (c *Client) Resolve(p capability.Port) (string, error) {
	c.mu.Lock()
	if addr, ok := c.cache[p]; ok {
		c.mu.Unlock()
		return addr, nil
	}
	c.mu.Unlock()

	rep, body, err := c.tr.Trans(c.port, rpc.Header{Command: CmdResolve}, p[:])
	if err != nil {
		return "", fmt.Errorf("locate: resolve: %w", err)
	}
	if rep.Status != rpc.StatusOK {
		return "", fmt.Errorf("%x: %w", p[:], ErrUnknownPort)
	}
	addr := string(body)
	c.mu.Lock()
	c.cache[p] = addr
	c.mu.Unlock()
	return addr, nil
}

// Invalidate drops a cached resolution (after a connection failure).
func (c *Client) Invalidate(p capability.Port) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.cache, p)
}

// List fetches all registrations.
func (c *Client) List() ([]Entry, error) {
	rep, body, err := c.tr.Trans(c.port, rpc.Header{Command: CmdList}, nil)
	if err != nil {
		return nil, fmt.Errorf("locate: list: %w", err)
	}
	if rep.Status != rpc.StatusOK {
		return nil, rpc.Errf(rep.Status, "list rejected")
	}
	return decodeEntries(body)
}
