package simnet

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"bulletfs/internal/capability"
	"bulletfs/internal/hwmodel"
	"bulletfs/internal/rpc"
)

func newNet(t *testing.T) (*Net, *hwmodel.Clock, capability.Port) {
	t.Helper()
	mux := rpc.NewMux(0)
	port := capability.PortFromString("sim-echo")
	mux.Register(port, func(req rpc.Header, payload []byte) (rpc.Header, []byte) {
		out := make([]byte, len(payload))
		copy(out, payload)
		return rpc.ReplyOK(), out
	})
	clock := &hwmodel.Clock{}
	p := hwmodel.AmoebaProfile()
	return New(mux, clock, p.Net, p.CPU), clock, port
}

func TestTransMovesBytes(t *testing.T) {
	n, _, port := newNet(t)
	payload := bytes.Repeat([]byte{9}, 5000)
	rep, got, err := n.Trans(port, rpc.Header{}, payload)
	if err != nil {
		t.Fatalf("Trans: %v", err)
	}
	if rep.Status != rpc.StatusOK || !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted in simulation")
	}
}

func TestTransChargesTime(t *testing.T) {
	n, clock, port := newNet(t)
	if _, _, err := n.Trans(port, rpc.Header{}, make([]byte, 100)); err != nil {
		t.Fatalf("Trans: %v", err)
	}
	if clock.Now() == 0 {
		t.Fatal("transaction cost no virtual time")
	}
}

func TestLargerPayloadsCostMore(t *testing.T) {
	n, clock, port := newNet(t)
	start := clock.Now()
	if _, _, err := n.Trans(port, rpc.Header{}, make([]byte, 100)); err != nil {
		t.Fatalf("Trans: %v", err)
	}
	small := clock.Since(start)

	start = clock.Now()
	if _, _, err := n.Trans(port, rpc.Header{}, make([]byte, 100_000)); err != nil {
		t.Fatalf("Trans: %v", err)
	}
	large := clock.Since(start)
	if large <= small {
		t.Fatalf("100 KB (%v) not slower than 100 B (%v)", large, small)
	}
}

func TestNullRPCNearAmoebaMeasurement(t *testing.T) {
	// Amoeba's measured null RPC was ~1.4 ms; the simulated small
	// transaction should land in the same regime (0.7-3 ms).
	n, clock, port := newNet(t)
	start := clock.Now()
	if _, _, err := n.Trans(port, rpc.Header{}, nil); err != nil {
		t.Fatalf("Trans: %v", err)
	}
	got := clock.Since(start)
	if got < 700*time.Microsecond || got > 3*time.Millisecond {
		t.Fatalf("null RPC = %v, want ~1.4ms", got)
	}
}

func TestBulkBandwidthNearWireLimit(t *testing.T) {
	// 1 MB on a loaded 10 Mbit/s Ethernet: achievable bandwidth should be
	// several hundred KB/s — the regime the paper's Bullet reads live in.
	n, clock, port := newNet(t)
	const size = 1 << 20
	start := clock.Now()
	if _, _, err := n.Trans(port, rpc.Header{}, make([]byte, size)); err != nil {
		t.Fatalf("Trans: %v", err)
	}
	elapsed := clock.Since(start)
	bw := float64(size) / elapsed.Seconds() / 1024 // KB/s
	if bw < 300 || bw > 1200 {
		t.Fatalf("bulk bandwidth = %.0f KB/s, want 300-1200 (10 Mbit/s wire)", bw)
	}
}

func TestUnknownPort(t *testing.T) {
	n, _, _ := newNet(t)
	if _, _, err := n.Trans(capability.PortFromString("ghost"), rpc.Header{}, nil); !errors.Is(err, rpc.ErrNoServer) {
		t.Fatalf("err = %v, want ErrNoServer", err)
	}
}

func TestStatsAccumulate(t *testing.T) {
	n, _, port := newNet(t)
	if _, _, err := n.Trans(port, rpc.Header{}, make([]byte, 10)); err != nil {
		t.Fatalf("Trans: %v", err)
	}
	if _, _, err := n.Trans(port, rpc.Header{}, make([]byte, 20)); err != nil {
		t.Fatalf("Trans: %v", err)
	}
	st := n.Stats()
	if st.Transactions != 2 || st.BytesSent != 30 || st.BytesRecv != 30 {
		t.Fatalf("stats = %+v", st)
	}
	if n.Clock() == nil {
		t.Fatal("Clock() nil")
	}
}
