// Package simnet is the simulated "normally loaded 10 Mbit/s Ethernet" the
// paper measured on: an in-process rpc.Transport that really moves every
// payload byte but charges wire, packet and server-CPU costs to a shared
// virtual clock (internal/hwmodel) instead of sleeping. Together with
// disk.SimDisk it lets cmd/benchmark regenerate the paper's tables
// deterministically in milliseconds of real time.
package simnet

import (
	"sync"
	"time"

	"bulletfs/internal/capability"
	"bulletfs/internal/hwmodel"
	"bulletfs/internal/rpc"
)

// Net is a timed rpc.Transport over an rpc.Mux.
type Net struct {
	mux   *rpc.Mux
	clock *hwmodel.Clock
	model hwmodel.NetModel
	cpu   hwmodel.CPUModel

	mu    sync.Mutex
	stats Stats
}

// Stats counts simulated traffic.
type Stats struct {
	Transactions int64
	BytesSent    int64 // request payload bytes
	BytesRecv    int64 // reply payload bytes
}

var _ rpc.Transport = (*Net)(nil)

// New builds a simulated network dispatching to mux, charging the given
// models to clock. The CPU model covers the server's request processing
// (the disk costs are charged by the server's SimDisks).
func New(mux *rpc.Mux, clock *hwmodel.Clock, model hwmodel.NetModel, cpu hwmodel.CPUModel) *Net {
	return &Net{mux: mux, clock: clock, model: model, cpu: cpu}
}

// Parts is the virtual-time decomposition of one transaction: the request's
// flight to the server (RPC overhead plus wire and packet costs), the
// server's occupancy (CPU dispatch, memory copies, and every disk cost the
// engine charged while handling the request), and the reply's flight back.
// Latency is the sum; only Server occupies the server, so an open-loop
// generator queues requests on Server while charging NetOut/NetBack as pure
// pipeline delay.
type Parts struct {
	NetOut  time.Duration // request flight: per-RPC overhead + one-way wire time
	Server  time.Duration // server think time: CPU + cache + disk
	NetBack time.Duration // reply flight: one-way wire time
}

// Total returns the end-to-end virtual latency of the transaction.
func (p Parts) Total() time.Duration { return p.NetOut + p.Server + p.NetBack }

// Trans implements rpc.Transport: request flight time, server CPU time
// (dispatch plus one memory copy of the payload in and the reply out), and
// reply flight time are charged around the real dispatch.
func (n *Net) Trans(port capability.Port, req rpc.Header, payload []byte) (rpc.Header, []byte, error) {
	h, p, _, err := n.TransParts(port, req, payload)
	return h, p, err
}

// TransParts is Trans returning the virtual-time decomposition alongside
// the reply, for callers (the open-loop load generator) that model network
// flight and server occupancy separately.
func (n *Net) TransParts(port capability.Port, req rpc.Header, payload []byte) (rpc.Header, []byte, Parts, error) {
	var parts Parts
	reqBytes := rpc.HeaderLen + len(payload)
	parts.NetOut = n.model.PerRPCOverhead + n.model.OneWayTime(reqBytes)
	n.clock.Advance(parts.NetOut)

	// The server's occupancy is everything charged between dispatch entry
	// and exit: the CPU model's costs plus whatever the engine's simulated
	// disks add. Measuring it as a clock delta keeps the decomposition
	// honest no matter what the handler does.
	serverStart := n.clock.Now()
	n.clock.Advance(n.cpu.RequestTime(int64(len(payload))))
	repHdr, repPayload, err := n.mux.Dispatch(port, 0, req, payload)
	if err != nil {
		return repHdr, repPayload, parts, err
	}
	n.clock.Advance(n.cpu.RequestTime(int64(len(repPayload))) - n.cpu.PerRequest) // copy-out cost only
	parts.Server = n.clock.Now() - serverStart

	parts.NetBack = n.model.OneWayTime(rpc.HeaderLen + len(repPayload))
	n.clock.Advance(parts.NetBack)

	n.mu.Lock()
	n.stats.Transactions++
	n.stats.BytesSent += int64(len(payload))
	n.stats.BytesRecv += int64(len(repPayload))
	n.mu.Unlock()
	return repHdr, repPayload, parts, nil
}

// Clock returns the shared virtual clock.
func (n *Net) Clock() *hwmodel.Clock { return n.clock }

// Stats returns a snapshot of traffic counters.
func (n *Net) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}
