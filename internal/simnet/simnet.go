// Package simnet is the simulated "normally loaded 10 Mbit/s Ethernet" the
// paper measured on: an in-process rpc.Transport that really moves every
// payload byte but charges wire, packet and server-CPU costs to a shared
// virtual clock (internal/hwmodel) instead of sleeping. Together with
// disk.SimDisk it lets cmd/benchmark regenerate the paper's tables
// deterministically in milliseconds of real time.
package simnet

import (
	"sync"

	"bulletfs/internal/capability"
	"bulletfs/internal/hwmodel"
	"bulletfs/internal/rpc"
)

// Net is a timed rpc.Transport over an rpc.Mux.
type Net struct {
	mux   *rpc.Mux
	clock *hwmodel.Clock
	model hwmodel.NetModel
	cpu   hwmodel.CPUModel

	mu    sync.Mutex
	stats Stats
}

// Stats counts simulated traffic.
type Stats struct {
	Transactions int64
	BytesSent    int64 // request payload bytes
	BytesRecv    int64 // reply payload bytes
}

var _ rpc.Transport = (*Net)(nil)

// New builds a simulated network dispatching to mux, charging the given
// models to clock. The CPU model covers the server's request processing
// (the disk costs are charged by the server's SimDisks).
func New(mux *rpc.Mux, clock *hwmodel.Clock, model hwmodel.NetModel, cpu hwmodel.CPUModel) *Net {
	return &Net{mux: mux, clock: clock, model: model, cpu: cpu}
}

// Trans implements rpc.Transport: request flight time, server CPU time
// (dispatch plus one memory copy of the payload in and the reply out), and
// reply flight time are charged around the real dispatch.
func (n *Net) Trans(port capability.Port, req rpc.Header, payload []byte) (rpc.Header, []byte, error) {
	reqBytes := rpc.HeaderLen + len(payload)
	n.clock.Advance(n.model.PerRPCOverhead)
	n.clock.Advance(n.model.OneWayTime(reqBytes))
	n.clock.Advance(n.cpu.RequestTime(int64(len(payload))))

	repHdr, repPayload, err := n.mux.Dispatch(port, 0, req, payload)
	if err != nil {
		return repHdr, repPayload, err
	}

	n.clock.Advance(n.cpu.RequestTime(int64(len(repPayload))) - n.cpu.PerRequest) // copy-out cost only
	n.clock.Advance(n.model.OneWayTime(rpc.HeaderLen + len(repPayload)))

	n.mu.Lock()
	n.stats.Transactions++
	n.stats.BytesSent += int64(len(payload))
	n.stats.BytesRecv += int64(len(repPayload))
	n.mu.Unlock()
	return repHdr, repPayload, nil
}

// Clock returns the shared virtual clock.
func (n *Net) Clock() *hwmodel.Clock { return n.clock }

// Stats returns a snapshot of traffic counters.
func (n *Net) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}
