package promtext

import (
	"errors"
	"strings"
	"testing"
)

const goodDoc = `# TYPE bullet_rpc_read_requests counter
bullet_rpc_read_requests_total 42
# TYPE bullet_cache_bytes gauge
bullet_cache_bytes 1024
# TYPE bullet_rpc_read_latency_ns histogram
bullet_rpc_read_latency_ns_bucket{le="1000"} 1
bullet_rpc_read_latency_ns_bucket{le="2000000"} 5 # {trace_id="00000000deadbeef"} 1500000 1754600000.123456789
bullet_rpc_read_latency_ns_bucket{le="+Inf"} 6
bullet_rpc_read_latency_ns_sum 9000000
bullet_rpc_read_latency_ns_count 6
# EOF
`

func TestValidateGood(t *testing.T) {
	st, err := Validate(strings.NewReader(goodDoc))
	if err != nil {
		t.Fatal(err)
	}
	if st.Families != 3 || st.Histograms != 1 {
		t.Fatalf("stats = %+v, want 3 families 1 histogram", st)
	}
	if st.Samples != 7 {
		t.Fatalf("samples = %d, want 7", st.Samples)
	}
	if st.Exemplars != 1 {
		t.Fatalf("exemplars = %d, want 1", st.Exemplars)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name    string
		doc     string
		wantErr string
	}{
		{"missing EOF", "# TYPE a counter\na_total 1\n", "EOF"},
		{"content after EOF", "# EOF\nstray 1\n", "after # EOF"},
		{"sample before TYPE", "orphan 1\n# EOF\n", "before any # TYPE"},
		{"duplicate family", "# TYPE a counter\na_total 1\n# TYPE a counter\na_total 2\n# EOF\n", "duplicate family"},
		{"counter without _total", "# TYPE a counter\na 1\n# EOF\n", "_total"},
		{"negative counter", "# TYPE a counter\na_total -1\n# EOF\n", "negative"},
		{"bad type", "# TYPE a summary\n# EOF\n", "unsupported metric type"},
		{"bucket without le", "# TYPE h histogram\nh_bucket{x=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n# EOF\n", "without le"},
		{"buckets out of order", "# TYPE h histogram\nh_bucket{le=\"10\"} 1\nh_bucket{le=\"5\"} 2\n# EOF\n", "out of le order"},
		{"non-cumulative buckets", "# TYPE h histogram\nh_bucket{le=\"10\"} 5\nh_bucket{le=\"20\"} 3\n# EOF\n", "not cumulative"},
		{"no +Inf bucket", "# TYPE h histogram\nh_bucket{le=\"10\"} 1\nh_sum 1\nh_count 1\n# EOF\n", "+Inf"},
		{"Inf mismatch with count", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 4\n# EOF\n", "!= _count"},
		{"missing sum", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n# EOF\n", "missing _sum"},
		{"exemplar on gauge", "# TYPE g gauge\ng 1 # {trace_id=\"ab\"} 1\n# EOF\n", "exemplar on gauge"},
		{"malformed exemplar", "# TYPE a counter\na_total 1 # not-a-labelset\n# EOF\n", "malformed exemplar"},
		{"bad value", "# TYPE a counter\na_total squid\n# EOF\n", "bad sample value"},
		{"illegal name", "# TYPE 9lives counter\n# EOF\n", "malformed TYPE"},
		{"unterminated labels", "# TYPE h histogram\nh_bucket{le=\"1 1\n# EOF\n", "unterminated"},
		{"duplicate label", "# TYPE h histogram\nh_bucket{le=\"1\",le=\"2\"} 1\n# EOF\n", "duplicate label"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Validate(strings.NewReader(tc.doc))
			if err == nil {
				t.Fatalf("accepted invalid doc:\n%s", tc.doc)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
			}
			if !errors.Is(err, ErrInvalid) {
				t.Fatalf("err = %v does not wrap ErrInvalid", err)
			}
		})
	}
}

func TestValidateEscapedLabelValue(t *testing.T) {
	doc := "# TYPE a counter\na_total{path=\"a\\\"b\\\\c\"} 1\n# EOF\n"
	if _, err := Validate(strings.NewReader(doc)); err != nil {
		t.Fatal(err)
	}
}

func TestValidateTimestampedSamples(t *testing.T) {
	doc := "# TYPE a counter\na_total 1 1754600000.5\n# EOF\n"
	st, err := Validate(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if st.Samples != 1 {
		t.Fatalf("samples = %d, want 1", st.Samples)
	}
}

func TestFamilyNames(t *testing.T) {
	names, err := FamilyNames(strings.NewReader(goodDoc))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"bullet_cache_bytes", "bullet_rpc_read_latency_ns", "bullet_rpc_read_requests"}
	if len(names) != len(want) {
		t.Fatalf("names = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
}
