// Package promtext validates the OpenMetrics text exposition format the
// server's /metrics endpoint emits. It is a deliberately small,
// dependency-free checker — enough to gate CI on "the scrape parses and
// the histograms are sane" without importing a Prometheus client.
//
// Checked invariants:
//   - every sample belongs to a family declared by a preceding # TYPE
//     line, with a legal metric name and a known type
//   - family names are unique and samples are grouped under their family
//   - counter samples use the _total suffix and are non-negative
//   - histogram families carry _bucket/_sum/_count samples only; bucket
//     counts are cumulative (non-decreasing by le), the le label parses,
//     the last bucket is le="+Inf" and equals _count
//   - exemplars ({...} after #) appear only on bucket or counter samples
//     and parse as a labelset plus value plus optional timestamp
//   - the document ends with exactly one # EOF marker
package promtext

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ErrInvalid is wrapped by every structural validation failure, so
// callers can errors.Is-classify "the document is malformed" apart from
// I/O errors on the reader.
var ErrInvalid = errors.New("invalid OpenMetrics document")

// Stats summarizes a validated document.
type Stats struct {
	Families   int
	Samples    int
	Exemplars  int
	Histograms int
}

// family is one metric family mid-validation.
type family struct {
	typ string

	// histogram state
	buckets   []bucket
	sum       float64
	haveSum   bool
	count     float64
	haveCount bool
}

type bucket struct {
	le    float64
	count float64
}

// Validate reads one exposition document and returns its summary, or the
// first format error (tagged with its line number).
func Validate(r io.Reader) (Stats, error) {
	var st Stats
	fams := make(map[string]*family)
	var cur *family
	var curName string
	sawEOF := false

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if sawEOF {
			return st, fmt.Errorf("%w: line %d: content after # EOF", ErrInvalid, line)
		}
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if text == "# EOF" {
				sawEOF = true
				continue
			}
			rest, ok := strings.CutPrefix(text, "# TYPE ")
			if !ok {
				// Other comments (# HELP, # UNIT, free-form) are legal; skip.
				continue
			}
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || !legalName(name) {
				return st, fmt.Errorf("%w: line %d: malformed TYPE line %q", ErrInvalid, line, text)
			}
			switch typ {
			case "counter", "gauge", "histogram":
			default:
				return st, fmt.Errorf("%w: line %d: unsupported metric type %q", ErrInvalid, line, typ)
			}
			if _, dup := fams[name]; dup {
				return st, fmt.Errorf("%w: line %d: duplicate family %q", ErrInvalid, line, name)
			}
			if cur != nil {
				if err := closeFamily(curName, cur); err != nil {
					return st, fmt.Errorf("%w: line %d: %s", ErrInvalid, line, err)
				}
			}
			cur = &family{typ: typ}
			curName = name
			fams[name] = cur
			st.Families++
			if typ == "histogram" {
				st.Histograms++
			}
			continue
		}

		ex, err := parseSample(text, cur, curName)
		if err != nil {
			return st, fmt.Errorf("%w: line %d: %s", ErrInvalid, line, err)
		}
		st.Samples++
		st.Exemplars += ex
	}
	if err := sc.Err(); err != nil {
		return st, err
	}
	if cur != nil {
		if err := closeFamily(curName, cur); err != nil {
			return st, fmt.Errorf("%w: %s", ErrInvalid, err)
		}
	}
	if !sawEOF {
		return st, fmt.Errorf("%w: missing # EOF marker", ErrInvalid)
	}
	return st, nil
}

// parseSample validates one sample line against the open family,
// returning how many exemplars it carried (0 or 1).
func parseSample(text string, fam *family, famName string) (int, error) {
	if fam == nil {
		return 0, fmt.Errorf("sample %q before any # TYPE line", text)
	}
	name, labels, rest, err := splitSample(text)
	if err != nil {
		return 0, err
	}
	val, exemplar, err := splitValue(rest)
	if err != nil {
		return 0, err
	}

	switch fam.typ {
	case "counter":
		if name != famName+"_total" {
			return 0, fmt.Errorf("counter sample %q must be %s_total", name, famName)
		}
		if val < 0 {
			return 0, fmt.Errorf("counter %s is negative (%v)", name, val)
		}
	case "gauge":
		if name != famName {
			return 0, fmt.Errorf("gauge sample %q outside family %s", name, famName)
		}
		if exemplar != "" {
			return 0, fmt.Errorf("exemplar on gauge %s", name)
		}
	case "histogram":
		switch name {
		case famName + "_bucket":
			leStr, ok := labels["le"]
			if !ok {
				return 0, fmt.Errorf("bucket of %s without le label", famName)
			}
			le, err := parseLE(leStr)
			if err != nil {
				return 0, fmt.Errorf("bucket of %s: %w", famName, err)
			}
			if n := len(fam.buckets); n > 0 {
				last := fam.buckets[n-1]
				if le <= last.le {
					return 0, fmt.Errorf("buckets of %s out of le order (%v after %v)", famName, le, last.le)
				}
				if val < last.count {
					return 0, fmt.Errorf("bucket counts of %s not cumulative (%v after %v)", famName, val, last.count)
				}
			}
			if val < 0 {
				return 0, fmt.Errorf("bucket of %s is negative", famName)
			}
			fam.buckets = append(fam.buckets, bucket{le: le, count: val})
		case famName + "_sum":
			if fam.haveSum {
				return 0, fmt.Errorf("duplicate %s_sum", famName)
			}
			fam.sum, fam.haveSum = val, true
			if exemplar != "" {
				return 0, fmt.Errorf("exemplar on %s_sum", famName)
			}
		case famName + "_count":
			if fam.haveCount {
				return 0, fmt.Errorf("duplicate %s_count", famName)
			}
			fam.count, fam.haveCount = val, true
			if exemplar != "" {
				return 0, fmt.Errorf("exemplar on %s_count", famName)
			}
		default:
			return 0, fmt.Errorf("sample %q outside histogram family %s", name, famName)
		}
	}

	if exemplar != "" {
		if err := validateExemplar(exemplar); err != nil {
			return 0, err
		}
		return 1, nil
	}
	return 0, nil
}

// closeFamily runs the whole-family invariants once its samples end.
func closeFamily(name string, fam *family) error {
	if fam.typ != "histogram" {
		return nil
	}
	if len(fam.buckets) == 0 {
		return fmt.Errorf("histogram %s has no buckets", name)
	}
	last := fam.buckets[len(fam.buckets)-1]
	if !math.IsInf(last.le, 1) {
		return fmt.Errorf("histogram %s: last bucket le=%v, want +Inf", name, last.le)
	}
	if !fam.haveSum || !fam.haveCount {
		return fmt.Errorf("histogram %s missing _sum or _count", name)
	}
	if last.count != fam.count {
		return fmt.Errorf("histogram %s: +Inf bucket %v != _count %v", name, last.count, fam.count)
	}
	return nil
}

// splitSample cuts "name{labels} rest" into its parts. Labels are
// optional.
func splitSample(text string) (name string, labels map[string]string, rest string, err error) {
	i := strings.IndexAny(text, "{ ")
	if i < 0 {
		return "", nil, "", fmt.Errorf("malformed sample %q", text)
	}
	name = text[:i]
	if !legalName(name) {
		return "", nil, "", fmt.Errorf("illegal metric name %q", name)
	}
	if text[i] == '{' {
		end := strings.IndexByte(text[i:], '}')
		if end < 0 {
			return "", nil, "", fmt.Errorf("unterminated labelset in %q", text)
		}
		labels, err = parseLabels(text[i+1 : i+end])
		if err != nil {
			return "", nil, "", err
		}
		rest = strings.TrimPrefix(text[i+end+1:], " ")
	} else {
		rest = text[i+1:]
	}
	return name, labels, rest, nil
}

// splitValue cuts "value [timestamp] [# exemplar]" returning the value
// and the raw exemplar text ("" if none).
func splitValue(rest string) (val float64, exemplar string, err error) {
	if h := strings.Index(rest, " # "); h >= 0 {
		exemplar = rest[h+3:]
		rest = rest[:h]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return 0, "", fmt.Errorf("malformed value %q", rest)
	}
	val, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return 0, "", fmt.Errorf("bad sample value %q", fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseFloat(fields[1], 64); err != nil {
			return 0, "", fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return val, exemplar, nil
}

// validateExemplar checks "{labels} value [timestamp]".
func validateExemplar(ex string) error {
	if !strings.HasPrefix(ex, "{") {
		return fmt.Errorf("malformed exemplar %q", ex)
	}
	end := strings.IndexByte(ex, '}')
	if end < 0 {
		return fmt.Errorf("unterminated exemplar labelset %q", ex)
	}
	if _, err := parseLabels(ex[1:end]); err != nil {
		return fmt.Errorf("exemplar labels: %w", err)
	}
	fields := strings.Fields(ex[end+1:])
	if len(fields) < 1 || len(fields) > 2 {
		return fmt.Errorf("malformed exemplar value in %q", ex)
	}
	for _, f := range fields {
		if _, err := strconv.ParseFloat(f, 64); err != nil {
			return fmt.Errorf("bad exemplar number %q", f)
		}
	}
	return nil
}

// parseLabels parses `k1="v1",k2="v2"` (no escapes beyond \" \\ \n —
// the subset our exporter emits).
func parseLabels(s string) (map[string]string, error) {
	labels := make(map[string]string)
	for s != "" {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("malformed label in %q", s)
		}
		key := s[:eq]
		if !legalName(key) {
			return nil, fmt.Errorf("illegal label name %q", key)
		}
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			return nil, fmt.Errorf("unquoted label value after %q", key)
		}
		s = s[1:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(s); i++ {
			ch := s[i]
			if ch == '\\' && i+1 < len(s) {
				i++
				val.WriteByte(s[i])
				continue
			}
			if ch == '"' {
				s = s[i+1:]
				closed = true
				break
			}
			val.WriteByte(ch)
		}
		if !closed {
			return nil, fmt.Errorf("unterminated label value for %q", key)
		}
		if _, dup := labels[key]; dup {
			return nil, fmt.Errorf("duplicate label %q", key)
		}
		labels[key] = val.String()
		s = strings.TrimPrefix(s, ",")
	}
	return labels, nil
}

// parseLE parses a bucket bound: a float or the literal +Inf.
func parseLE(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	le, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad le %q", s)
	}
	return le, nil
}

// legalName reports whether s is a legal metric or label name.
func legalName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		ch := s[i]
		ok := ch == '_' || ch == ':' || ch >= 'a' && ch <= 'z' || ch >= 'A' && ch <= 'Z' ||
			i > 0 && ch >= '0' && ch <= '9'
		if !ok {
			return false
		}
	}
	return true
}

// FamilyNames returns the sorted family names of a validated document —
// a convenience for golden tests. It re-reads the document.
func FamilyNames(r io.Reader) ([]string, error) {
	names := []string{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		if rest, ok := strings.CutPrefix(sc.Text(), "# TYPE "); ok {
			if name, _, ok := strings.Cut(rest, " "); ok {
				names = append(names, name)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Strings(names)
	return names, nil
}
