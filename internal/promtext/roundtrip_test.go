package promtext_test

import (
	"strings"
	"testing"

	"bulletfs/internal/promtext"
	"bulletfs/internal/stats"
)

// TestRoundTrip pins the contract between the exporter and the checker:
// whatever stats.WriteOpenMetrics emits, promtext.Validate accepts —
// including exemplars.
func TestRoundTrip(t *testing.T) {
	r := stats.NewRegistry()
	r.Counter("rpc.read.requests").Add(9)
	r.Gauge("cache.bytes").Set(4096)
	r.GaugeFunc("cache.hit_ratio_pct", func() int64 { return 87 })
	h := r.HistogramExemplars("rpc.read.latency_ns", nil, 0)
	h.ObserveTraced(1500, 0xfeed)
	h.Observe(250)
	sizes := r.Histogram("rpc.read.rep_bytes", stats.DefaultSizeBounds)
	sizes.Observe(4096)

	var b strings.Builder
	if err := r.Snapshot().WriteOpenMetrics(&b); err != nil {
		t.Fatal(err)
	}
	st, err := promtext.Validate(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("exporter output rejected: %v\n%s", err, b.String())
	}
	if st.Histograms != 2 {
		t.Fatalf("histograms = %d, want 2", st.Histograms)
	}
	if st.Exemplars < 1 {
		t.Fatalf("exemplars = %d, want >= 1", st.Exemplars)
	}
}
