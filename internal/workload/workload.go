// Package workload generates synthetic file-system traces matching the
// statistics the paper builds its case on:
//
//   - "the median file size in a UNIX system is 1 Kbyte and 99% of all
//     files are less than 64 Kbytes" (§1, citing Mullender & Tanenbaum,
//     "Immediate Files");
//   - "most files (about 75%) are accessed in entirety" (§2, citing the
//     BSD trace study of Ousterhout et al.).
//
// Sizes follow a log-normal distribution fitted to the two quantiles
// (median 1 KB, p99 64 KB); operations mix whole-file reads, partial
// reads, creates and deletes with a read-heavy ratio typical of the
// traces. Everything is seeded and deterministic.
package workload

import (
	"math"
	"math/rand"
)

// Op is one trace operation kind.
type Op int

// Operation kinds.
const (
	OpWholeRead Op = iota + 1 // read the entire file
	OpPartRead                // read a fraction of the file
	OpCreate                  // write a new file
	OpDelete                  // remove a file
)

// String names the operation kind, stable for use in metric keys.
func (o Op) String() string {
	switch o {
	case OpWholeRead:
		return "whole-read"
	case OpPartRead:
		return "part-read"
	case OpCreate:
		return "create"
	case OpDelete:
		return "delete"
	default:
		return "unknown"
	}
}

// Event is one operation of a trace.
type Event struct {
	Op   Op
	File int   // index into the trace's file population
	Size int   // file size in bytes (for OpCreate: the new file's size)
	N    int64 // for OpPartRead: bytes to read
}

// Config tunes the generator. Zero values take the paper's numbers.
type Config struct {
	// MedianBytes is the size distribution's median (default 1024, §1).
	MedianBytes float64
	// P99Bytes is the 99th percentile (default 65536, §1).
	P99Bytes float64
	// MaxBytes clips the tail (default 1 MB — the Bullet model wants
	// files comfortably inside server memory).
	MaxBytes int
	// WholeReadFrac is the fraction of reads touching the whole file
	// (default 0.75, §2).
	WholeReadFrac float64
	// ReadFrac is the fraction of operations that are reads at all
	// (default 0.8; the BSD traces were strongly read-dominated).
	ReadFrac float64
	// Files is the working-set population (default 200).
	Files int
	// Seed makes the trace reproducible.
	Seed int64
}

func (c *Config) fill() {
	if c.MedianBytes == 0 {
		c.MedianBytes = 1024
	}
	if c.P99Bytes == 0 {
		c.P99Bytes = 64 * 1024
	}
	if c.MaxBytes == 0 {
		c.MaxBytes = 1 << 20
	}
	if c.WholeReadFrac == 0 {
		c.WholeReadFrac = 0.75
	}
	if c.ReadFrac == 0 {
		c.ReadFrac = 0.8
	}
	if c.Files == 0 {
		c.Files = 200
	}
}

// Generator produces file sizes and traces.
type Generator struct {
	cfg Config
	rng *rand.Rand
	mu  float64 // log-normal parameters
	sig float64
}

// New builds a generator.
func New(cfg Config) *Generator {
	cfg.fill()
	// Fit a log-normal: median = e^mu; p99 = e^(mu + 2.3263*sigma).
	mu := math.Log(cfg.MedianBytes)
	sigma := (math.Log(cfg.P99Bytes) - mu) / 2.3263
	return &Generator{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		mu:  mu,
		sig: sigma,
	}
}

// FileSize draws one file size from the fitted distribution.
func (g *Generator) FileSize() int {
	v := math.Exp(g.mu + g.sig*g.rng.NormFloat64())
	size := int(v)
	if size < 1 {
		size = 1
	}
	if size > g.cfg.MaxBytes {
		size = g.cfg.MaxBytes
	}
	return size
}

// Population draws the initial file population's sizes.
func (g *Generator) Population() []int {
	sizes := make([]int, g.cfg.Files)
	for i := range sizes {
		sizes[i] = g.FileSize()
	}
	return sizes
}

// Trace produces n operations against a population of the configured
// size. File indexes are Zipf-ish (recent/popular files dominate, as in
// the BSD traces): index = floor(U^2 * files).
func (g *Generator) Trace(n int) []Event {
	events := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		u := g.rng.Float64()
		pick := int(u * u * float64(g.cfg.Files))
		if pick >= g.cfg.Files {
			pick = g.cfg.Files - 1
		}
		switch {
		case g.rng.Float64() < g.cfg.ReadFrac:
			if g.rng.Float64() < g.cfg.WholeReadFrac {
				events = append(events, Event{Op: OpWholeRead, File: pick})
			} else {
				events = append(events, Event{Op: OpPartRead, File: pick, N: 1 + int64(g.rng.Intn(4096))})
			}
		case g.rng.Float64() < 0.7:
			events = append(events, Event{Op: OpCreate, File: pick, Size: g.FileSize()})
		default:
			events = append(events, Event{Op: OpDelete, File: pick})
		}
	}
	return events
}

// Stats summarizes a size population for checking the fit.
type Stats struct {
	Median  int
	P99     int
	Max     int
	MeanKB  float64
	Under64 float64 // fraction below 64 KB
}

// Summarize computes population statistics.
func Summarize(sizes []int) Stats {
	if len(sizes) == 0 {
		return Stats{}
	}
	sorted := make([]int, len(sizes))
	copy(sorted, sizes)
	// insertion sort is fine for experiment-sized populations
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	var sum float64
	under := 0
	for _, s := range sorted {
		sum += float64(s)
		if s < 64*1024 {
			under++
		}
	}
	return Stats{
		Median:  sorted[len(sorted)/2],
		P99:     sorted[len(sorted)*99/100],
		Max:     sorted[len(sorted)-1],
		MeanKB:  sum / float64(len(sorted)) / 1024,
		Under64: float64(under) / float64(len(sorted)),
	}
}
