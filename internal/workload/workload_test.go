package workload

import (
	"testing"
)

func TestSizeDistributionMatchesPaperQuantiles(t *testing.T) {
	g := New(Config{Seed: 42})
	sizes := make([]int, 20000)
	for i := range sizes {
		sizes[i] = g.FileSize()
	}
	st := Summarize(sizes)
	// §1: median ~1 KB. Allow a 2x band (sampling + clipping).
	if st.Median < 512 || st.Median > 2048 {
		t.Fatalf("median = %d, want ~1024", st.Median)
	}
	// §1: 99%% of files below 64 KB. Allow 97%%+.
	if st.Under64 < 0.97 {
		t.Fatalf("under-64KB fraction = %.3f, want >= 0.97", st.Under64)
	}
	if st.Max > 1<<20 {
		t.Fatalf("max = %d, want clipped at 1 MB", st.Max)
	}
	if st.MeanKB <= 0 {
		t.Fatalf("mean = %f", st.MeanKB)
	}
}

func TestTraceDeterministic(t *testing.T) {
	a := New(Config{Seed: 7}).Trace(500)
	b := New(Config{Seed: 7}).Trace(500)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := New(Config{Seed: 8}).Trace(500)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestTraceOperationMix(t *testing.T) {
	g := New(Config{Seed: 1})
	events := g.Trace(10000)
	counts := map[Op]int{}
	for _, e := range events {
		counts[e.Op]++
		if e.File < 0 || e.File >= 200 {
			t.Fatalf("file index %d out of population", e.File)
		}
		if e.Op == OpPartRead && (e.N < 1 || e.N > 4096) {
			t.Fatalf("partial read of %d bytes", e.N)
		}
		if e.Op == OpCreate && e.Size < 1 {
			t.Fatalf("create of %d bytes", e.Size)
		}
	}
	reads := counts[OpWholeRead] + counts[OpPartRead]
	frac := float64(reads) / float64(len(events))
	if frac < 0.75 || frac > 0.85 {
		t.Fatalf("read fraction = %.2f, want ~0.8", frac)
	}
	whole := float64(counts[OpWholeRead]) / float64(reads)
	if whole < 0.70 || whole > 0.80 {
		t.Fatalf("whole-read fraction = %.2f, want ~0.75 (§2)", whole)
	}
	if counts[OpCreate] == 0 || counts[OpDelete] == 0 {
		t.Fatal("trace missing creates or deletes")
	}
}

func TestPopulationSize(t *testing.T) {
	g := New(Config{Files: 50, Seed: 3})
	pop := g.Population()
	if len(pop) != 50 {
		t.Fatalf("population = %d, want 50", len(pop))
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if st := Summarize(nil); st != (Stats{}) {
		t.Fatalf("Summarize(nil) = %+v", st)
	}
}

func TestCustomQuantiles(t *testing.T) {
	g := New(Config{MedianBytes: 4096, P99Bytes: 256 * 1024, Seed: 5})
	sizes := make([]int, 20000)
	for i := range sizes {
		sizes[i] = g.FileSize()
	}
	st := Summarize(sizes)
	if st.Median < 2048 || st.Median > 8192 {
		t.Fatalf("median = %d, want ~4096", st.Median)
	}
}
