package workload

import (
	"reflect"
	"testing"
)

func TestSizeDistributionMatchesPaperQuantiles(t *testing.T) {
	g := New(Config{Seed: 42})
	sizes := make([]int, 20000)
	for i := range sizes {
		sizes[i] = g.FileSize()
	}
	st := Summarize(sizes)
	// §1: median ~1 KB. Allow a 2x band (sampling + clipping).
	if st.Median < 512 || st.Median > 2048 {
		t.Fatalf("median = %d, want ~1024", st.Median)
	}
	// §1: 99%% of files below 64 KB. Allow 97%%+.
	if st.Under64 < 0.97 {
		t.Fatalf("under-64KB fraction = %.3f, want >= 0.97", st.Under64)
	}
	if st.Max > 1<<20 {
		t.Fatalf("max = %d, want clipped at 1 MB", st.Max)
	}
	if st.MeanKB <= 0 {
		t.Fatalf("mean = %f", st.MeanKB)
	}
	// §1: the fitted log-normal's p99 must land at ~64 KB. A 2x band
	// absorbs sampling noise in the extreme quantile; a mis-fit sigma
	// (p99 at 8 KB or 500 KB) still fails loudly.
	if st.P99 < 32*1024 || st.P99 > 128*1024 {
		t.Fatalf("p99 = %d, want ~65536", st.P99)
	}
}

// Two generators from the same seed must emit byte-identical traces and
// populations — the SLO baseline's exactness rests on this.
func TestTraceSameSeedByteIdentical(t *testing.T) {
	cfg := Config{Files: 64, Seed: 99}
	a, b := New(cfg), New(cfg)
	if !reflect.DeepEqual(a.Population(), b.Population()) {
		t.Fatal("same-seed populations differ")
	}
	ta, tb := a.Trace(2000), b.Trace(2000)
	if !reflect.DeepEqual(ta, tb) {
		t.Fatal("same-seed traces differ")
	}
	if reflect.DeepEqual(ta, New(Config{Files: 64, Seed: 100}).Trace(2000)) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestOpString(t *testing.T) {
	want := map[Op]string{
		OpWholeRead: "whole-read",
		OpPartRead:  "part-read",
		OpCreate:    "create",
		OpDelete:    "delete",
		Op(0):       "unknown",
	}
	for op, name := range want {
		if got := op.String(); got != name {
			t.Errorf("Op(%d).String() = %q, want %q", int(op), got, name)
		}
	}
}

func TestTraceDeterministic(t *testing.T) {
	a := New(Config{Seed: 7}).Trace(500)
	b := New(Config{Seed: 7}).Trace(500)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := New(Config{Seed: 8}).Trace(500)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestTraceOperationMix(t *testing.T) {
	g := New(Config{Seed: 1})
	events := g.Trace(10000)
	counts := map[Op]int{}
	for _, e := range events {
		counts[e.Op]++
		if e.File < 0 || e.File >= 200 {
			t.Fatalf("file index %d out of population", e.File)
		}
		if e.Op == OpPartRead && (e.N < 1 || e.N > 4096) {
			t.Fatalf("partial read of %d bytes", e.N)
		}
		if e.Op == OpCreate && e.Size < 1 {
			t.Fatalf("create of %d bytes", e.Size)
		}
	}
	reads := counts[OpWholeRead] + counts[OpPartRead]
	frac := float64(reads) / float64(len(events))
	if frac < 0.75 || frac > 0.85 {
		t.Fatalf("read fraction = %.2f, want ~0.8", frac)
	}
	whole := float64(counts[OpWholeRead]) / float64(reads)
	if whole < 0.70 || whole > 0.80 {
		t.Fatalf("whole-read fraction = %.2f, want ~0.75 (§2)", whole)
	}
	if counts[OpCreate] == 0 || counts[OpDelete] == 0 {
		t.Fatal("trace missing creates or deletes")
	}
}

func TestPopulationSize(t *testing.T) {
	g := New(Config{Files: 50, Seed: 3})
	pop := g.Population()
	if len(pop) != 50 {
		t.Fatalf("population = %d, want 50", len(pop))
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if st := Summarize(nil); st != (Stats{}) {
		t.Fatalf("Summarize(nil) = %+v", st)
	}
}

func TestCustomQuantiles(t *testing.T) {
	g := New(Config{MedianBytes: 4096, P99Bytes: 256 * 1024, Seed: 5})
	sizes := make([]int, 20000)
	for i := range sizes {
		sizes[i] = g.FileSize()
	}
	st := Summarize(sizes)
	if st.Median < 2048 || st.Median > 8192 {
		t.Fatalf("median = %d, want ~4096", st.Median)
	}
}
