package capability

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func mustRandom(t *testing.T) Random {
	t.Helper()
	r, err := NewRandom()
	if err != nil {
		t.Fatalf("NewRandom: %v", err)
	}
	return r
}

func mustPort(t *testing.T) Port {
	t.Helper()
	p, err := NewPort()
	if err != nil {
		t.Fatalf("NewPort: %v", err)
	}
	return p
}

func TestOwnerVerifies(t *testing.T) {
	r := mustRandom(t)
	c := Owner(mustPort(t), 42, r)
	got, err := Verify(c, r)
	if err != nil {
		t.Fatalf("Verify(owner): %v", err)
	}
	if got != RightsAll {
		t.Fatalf("Verify(owner) rights = %08b, want all", got)
	}
}

func TestOwnerMasksObjectNumber(t *testing.T) {
	r := mustRandom(t)
	c := Owner(mustPort(t), MaxObject+5, r)
	if c.Object != 4 {
		t.Fatalf("Object = %d, want 4 (masked to 24 bits)", c.Object)
	}
}

func TestRestrictVerifies(t *testing.T) {
	r := mustRandom(t)
	owner := Owner(mustPort(t), 7, r)
	restricted, err := Restrict(owner, RightRead)
	if err != nil {
		t.Fatalf("Restrict: %v", err)
	}
	got, err := Verify(restricted, r)
	if err != nil {
		t.Fatalf("Verify(restricted): %v", err)
	}
	if got != RightRead {
		t.Fatalf("rights = %08b, want %08b", got, RightRead)
	}
}

func TestRestrictAllRightsIsIdentity(t *testing.T) {
	r := mustRandom(t)
	owner := Owner(mustPort(t), 7, r)
	same, err := Restrict(owner, RightsAll)
	if err != nil {
		t.Fatalf("Restrict(all): %v", err)
	}
	if same != owner {
		t.Fatalf("Restrict(all) = %v, want unchanged %v", same, owner)
	}
}

func TestRestrictOfRestrictedFails(t *testing.T) {
	r := mustRandom(t)
	owner := Owner(mustPort(t), 7, r)
	restricted, err := Restrict(owner, RightRead|RightDelete)
	if err != nil {
		t.Fatalf("Restrict: %v", err)
	}
	if _, err := Restrict(restricted, RightRead); !errors.Is(err, ErrBadRights) {
		t.Fatalf("Restrict(restricted) err = %v, want ErrBadRights", err)
	}
}

func TestVerifyRejectsWrongRandom(t *testing.T) {
	r1, r2 := mustRandom(t), mustRandom(t)
	c := Owner(mustPort(t), 9, r1)
	if _, err := Verify(c, r2); !errors.Is(err, ErrBadCheck) {
		t.Fatalf("Verify with wrong random err = %v, want ErrBadCheck", err)
	}
}

func TestVerifyRejectsAmplifiedRights(t *testing.T) {
	r := mustRandom(t)
	owner := Owner(mustPort(t), 9, r)
	restricted, err := Restrict(owner, RightRead)
	if err != nil {
		t.Fatalf("Restrict: %v", err)
	}
	// An attacker flips rights bits without knowing R.
	forged := restricted
	forged.Rights = RightRead | RightDelete
	if _, err := Verify(forged, r); !errors.Is(err, ErrBadCheck) {
		t.Fatalf("Verify(amplified) err = %v, want ErrBadCheck", err)
	}
	// Claiming owner rights with a restricted check must also fail.
	forged.Rights = RightsAll
	if _, err := Verify(forged, r); !errors.Is(err, ErrBadCheck) {
		t.Fatalf("Verify(fake owner) err = %v, want ErrBadCheck", err)
	}
}

func TestRequire(t *testing.T) {
	r := mustRandom(t)
	owner := Owner(mustPort(t), 3, r)
	readOnly, err := Restrict(owner, RightRead)
	if err != nil {
		t.Fatalf("Restrict: %v", err)
	}
	if err := Require(readOnly, r, RightRead); err != nil {
		t.Fatalf("Require(read) on read-only: %v", err)
	}
	if err := Require(readOnly, r, RightDelete); !errors.Is(err, ErrBadRights) {
		t.Fatalf("Require(delete) err = %v, want ErrBadRights", err)
	}
	if err := Require(owner, r, RightRead|RightDelete); err != nil {
		t.Fatalf("Require on owner: %v", err)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	r := mustRandom(t)
	in := Owner(mustPort(t), 123456, r)
	b, err := in.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	if len(b) != EncodedLen {
		t.Fatalf("encoded length = %d, want %d", len(b), EncodedLen)
	}
	var out Capability
	if err := out.UnmarshalBinary(b); err != nil {
		t.Fatalf("UnmarshalBinary: %v", err)
	}
	if out != in {
		t.Fatalf("round trip: got %v, want %v", out, in)
	}
}

func TestMarshalRejectsOversizeObject(t *testing.T) {
	c := Capability{Object: MaxObject + 1}
	if _, err := c.MarshalBinary(); !errors.Is(err, ErrObjectRange) {
		t.Fatalf("MarshalBinary err = %v, want ErrObjectRange", err)
	}
}

func TestUnmarshalRejectsShortBuffer(t *testing.T) {
	var c Capability
	if err := c.UnmarshalBinary(make([]byte, EncodedLen-1)); err == nil {
		t.Fatal("UnmarshalBinary(short) succeeded, want error")
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	r := mustRandom(t)
	in := Owner(mustPort(t), 0xABCDEF, r)
	out, err := Parse(in.String())
	if err != nil {
		t.Fatalf("Parse(%q): %v", in.String(), err)
	}
	if out != in {
		t.Fatalf("round trip: got %v, want %v", out, in)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"deadbeef",
		"zz:00:00:00",
		"0102030405:000001:01:010203040506",      // short port
		"010203040506:000001:01:0102030405",      // short check
		"010203040506:0001:01:010203040506",      // short object
		"010203040506:000001:0q:010203040506",    // bad hex rights
		"010203040506:000001:01:01020304050607",  // long check
		"01020304050607:000001:01:010203040506",  // long port
		"010203040506:000001:0102:010203040506",  // long rights
		"010203040506:000001:01",                 // missing field
		"010203040506:000001:01:010203040506:xx", // Parse takes the tail as check
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestEncodeDecodeStream(t *testing.T) {
	r1, r2 := mustRandom(t), mustRandom(t)
	c1 := Owner(mustPort(t), 1, r1)
	c2 := Owner(mustPort(t), 2, r2)
	var buf []byte
	buf = Encode(buf, c1)
	buf = Encode(buf, c2)
	if len(buf) != 2*EncodedLen {
		t.Fatalf("stream length = %d, want %d", len(buf), 2*EncodedLen)
	}
	got1, rest, err := Decode(buf)
	if err != nil {
		t.Fatalf("Decode first: %v", err)
	}
	got2, rest, err := Decode(rest)
	if err != nil {
		t.Fatalf("Decode second: %v", err)
	}
	if len(rest) != 0 {
		t.Fatalf("leftover bytes: %d", len(rest))
	}
	if got1 != c1 || got2 != c2 {
		t.Fatalf("decoded %v, %v; want %v, %v", got1, got2, c1, c2)
	}
	if _, _, err := Decode(rest); err == nil {
		t.Fatal("Decode(empty) succeeded, want error")
	}
}

func TestKeyIgnoresRights(t *testing.T) {
	r := mustRandom(t)
	owner := Owner(mustPort(t), 77, r)
	restricted, err := Restrict(owner, RightRead)
	if err != nil {
		t.Fatalf("Restrict: %v", err)
	}
	if owner.Key() != restricted.Key() {
		t.Fatal("owner and restricted capability keys differ")
	}
	other := Owner(owner.Port, 78, r)
	if owner.Key() == other.Key() {
		t.Fatal("different objects share a key")
	}
}

func TestPortFromStringDeterministic(t *testing.T) {
	a, b := PortFromString("bullet-0"), PortFromString("bullet-0")
	if a != b {
		t.Fatal("PortFromString not deterministic")
	}
	if a == PortFromString("bullet-1") {
		t.Fatal("distinct names map to the same port")
	}
}

func TestRandomIsZero(t *testing.T) {
	var zero Random
	if !zero.IsZero() {
		t.Fatal("zero Random not reported as zero")
	}
	r := mustRandom(t)
	if r.IsZero() {
		t.Fatal("fresh Random reported as zero")
	}
}

// Property: for every random number and rights mask, a correctly derived
// capability verifies to exactly its mask, and no single-bit mutation of the
// check field verifies.
func TestQuickCheckFieldSoundness(t *testing.T) {
	f := func(rb [CheckLen]byte, rights uint8) bool {
		r := Random(rb)
		owner := Owner(Port{1}, 5, r)
		mask := Rights(rights)
		var c Capability
		if mask == RightsAll {
			c = owner
		} else {
			var err error
			c, err = Restrict(owner, mask)
			if err != nil {
				return false
			}
		}
		got, err := Verify(c, r)
		if err != nil || got != mask {
			return false
		}
		for bit := 0; bit < CheckLen*8; bit++ {
			mut := c
			mut.Check[bit/8] ^= 1 << (bit % 8)
			if _, err := Verify(mut, r); err == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: marshalling round-trips for arbitrary field values.
func TestQuickMarshalRoundTrip(t *testing.T) {
	f := func(port [PortLen]byte, object uint32, rights uint8, check [CheckLen]byte) bool {
		in := Capability{
			Port:   Port(port),
			Object: object & MaxObject,
			Rights: Rights(rights),
			Check:  Check(check),
		}
		b, err := in.MarshalBinary()
		if err != nil {
			return false
		}
		var out Capability
		if err := out.UnmarshalBinary(b); err != nil {
			return false
		}
		return out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: textual round trip.
func TestQuickStringParse(t *testing.T) {
	f := func(port [PortLen]byte, object uint32, rights uint8, check [CheckLen]byte) bool {
		in := Capability{
			Port:   Port(port),
			Object: object & MaxObject,
			Rights: Rights(rights),
			Check:  Check(check),
		}
		out, err := Parse(in.String())
		return err == nil && out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistinctRandomsDistinctChecks(t *testing.T) {
	// Two objects with different randoms must never share restricted checks.
	r1, r2 := mustRandom(t), mustRandom(t)
	c1 := onewayCheck(r1, RightRead)
	c2 := onewayCheck(r2, RightRead)
	if bytes.Equal(c1[:], c2[:]) {
		t.Fatal("distinct randoms produced identical checks")
	}
}

func TestHas(t *testing.T) {
	r := RightRead | RightDelete
	if !r.Has(RightRead) || !r.Has(RightDelete) || !r.Has(RightRead|RightDelete) {
		t.Fatal("Has missed present bits")
	}
	if r.Has(RightCreate) || r.Has(RightRead|RightCreate) {
		t.Fatal("Has reported absent bits")
	}
	if !RightsAll.Has(RightAdmin | RightList) {
		t.Fatal("RightsAll should include everything")
	}
}
