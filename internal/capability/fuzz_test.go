package capability

import (
	"bytes"
	"testing"
)

// FuzzParse hardens the textual capability parser against hostile input
// (capabilities arrive on command lines and in config files).
func FuzzParse(f *testing.F) {
	f.Add("010203040506:000001:01:0102030405ff")
	f.Add("010203040506:ffffff:ff:000000000000")
	f.Add("")
	f.Add(":::")
	f.Add("zz:00:00:zz")
	f.Fuzz(func(t *testing.T, s string) {
		c, err := Parse(s)
		if err != nil {
			return
		}
		// Anything that parses must round-trip exactly.
		again, err := Parse(c.String())
		if err != nil || again != c {
			t.Fatalf("round trip of %q: %v, %v", s, again, err)
		}
	})
}

// FuzzUnmarshalBinary hardens the wire decoder.
func FuzzUnmarshalBinary(f *testing.F) {
	valid, _ := Owner(Port{1, 2, 3, 4, 5, 6}, 99, Random{9, 9, 9, 9, 9, 9}).MarshalBinary()
	f.Add(valid)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, EncodedLen))
	f.Fuzz(func(t *testing.T, data []byte) {
		var c Capability
		if err := c.UnmarshalBinary(data); err != nil {
			return
		}
		out, err := c.MarshalBinary()
		if err != nil {
			t.Fatalf("marshal of decoded capability: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("round trip changed bytes: %x -> %x", data, out)
		}
	})
}
