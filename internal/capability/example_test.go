package capability_test

import (
	"fmt"

	"bulletfs/internal/capability"
)

// A server creates an object and hands its owner capability to a client;
// the client derives a read-only capability locally and a third party
// fails to forge more rights.
func ExampleRestrict() {
	random, _ := capability.NewRandom()
	port := capability.PortFromString("file-server")

	owner := capability.Owner(port, 7, random)
	readOnly, _ := capability.Restrict(owner, capability.RightRead)

	// The server validates both.
	rights, _ := capability.Verify(owner, random)
	fmt.Printf("owner verifies with rights %08b\n", rights)
	rights, _ = capability.Verify(readOnly, random)
	fmt.Printf("read-only verifies with rights %08b\n", rights)

	// An attacker flips the rights bits on the restricted capability.
	forged := readOnly
	forged.Rights |= capability.RightDelete
	if _, err := capability.Verify(forged, random); err != nil {
		fmt.Println("forged capability rejected")
	}
	// Output:
	// owner verifies with rights 11111111
	// read-only verifies with rights 00000001
	// forged capability rejected
}

func ExampleCapability_String() {
	c := capability.Capability{
		Port:   capability.Port{0xab, 0xcd, 0, 0, 0, 1},
		Object: 42,
		Rights: capability.RightRead,
		Check:  capability.Check{1, 2, 3, 4, 5, 6},
	}
	fmt.Println(c)
	parsed, _ := capability.Parse(c.String())
	fmt.Println(parsed == c)
	// Output:
	// abcd00000001:00002a:01:010203040506
	// true
}
