package capability

import (
	"errors"
	"testing"
)

// Regression tests for the constant-time Verify rewrite: the switch from ==
// to subtle.ConstantTimeCompare must not change which capabilities verify.
// Every accept/reject decision below held under the old comparison and must
// keep holding.

func TestConstantTimeVerifyAcceptsOwner(t *testing.T) {
	port := PortFromString("subtle-test")
	r, err := NewRandom()
	if err != nil {
		t.Fatal(err)
	}
	owner := Owner(port, 42, r)
	got, err := Verify(owner, r)
	if err != nil {
		t.Fatalf("Verify(owner) = %v, want nil", err)
	}
	if got != RightsAll {
		t.Fatalf("Verify(owner) rights = %08b, want RightsAll", got)
	}
}

func TestConstantTimeVerifyAcceptsRestricted(t *testing.T) {
	port := PortFromString("subtle-test")
	r, err := NewRandom()
	if err != nil {
		t.Fatal(err)
	}
	owner := Owner(port, 42, r)
	for _, mask := range []Rights{RightRead, RightRead | RightDelete, RightModify | RightList} {
		restricted, err := Restrict(owner, mask)
		if err != nil {
			t.Fatalf("Restrict(%08b): %v", mask, err)
		}
		got, err := Verify(restricted, r)
		if err != nil {
			t.Fatalf("Verify(restricted %08b) = %v, want nil", mask, err)
		}
		if got != mask {
			t.Fatalf("Verify(restricted) rights = %08b, want %08b", got, mask)
		}
	}
}

// TestConstantTimeVerifyRejectsForgeries flips every bit of the check field
// in turn — the single-byte prefixes are exactly the cases where a
// short-circuiting comparison leaks timing — and demands ErrBadCheck for
// each, on both owner and restricted capabilities.
func TestConstantTimeVerifyRejectsForgeries(t *testing.T) {
	port := PortFromString("subtle-test")
	r, err := NewRandom()
	if err != nil {
		t.Fatal(err)
	}
	owner := Owner(port, 7, r)
	restricted, err := Restrict(owner, RightRead)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		cap  Capability
	}{
		{"owner", owner},
		{"restricted", restricted},
	} {
		for byteIdx := 0; byteIdx < CheckLen; byteIdx++ {
			for bit := 0; bit < 8; bit++ {
				forged := tc.cap
				forged.Check[byteIdx] ^= 1 << bit
				if _, err := Verify(forged, r); !errors.Is(err, ErrBadCheck) {
					t.Fatalf("%s capability with check bit %d.%d flipped: Verify = %v, want ErrBadCheck",
						tc.name, byteIdx, bit, err)
				}
			}
		}
	}
}

// A restricted capability presenting the right check under inflated rights
// must fail: the check is bound to the rights byte through the one-way
// function.
func TestConstantTimeVerifyRejectsRightsSwap(t *testing.T) {
	port := PortFromString("subtle-test")
	r, err := NewRandom()
	if err != nil {
		t.Fatal(err)
	}
	owner := Owner(port, 7, r)
	restricted, err := Restrict(owner, RightRead)
	if err != nil {
		t.Fatal(err)
	}
	amplified := restricted
	amplified.Rights = RightRead | RightDelete
	if _, err := Verify(amplified, r); !errors.Is(err, ErrBadCheck) {
		t.Fatalf("amplified rights: Verify = %v, want ErrBadCheck", err)
	}
}
