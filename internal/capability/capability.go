// Package capability implements Amoeba-style sparse capabilities as used by
// the Bullet file server (van Renesse, Tanenbaum, Wilschut, ICDCS 1989).
//
// A capability names and protects one object managed by one server. It has
// four parts (paper §2.1):
//
//   - a 48-bit server port, a location-independent identifier chosen by the
//     server itself;
//   - an object number, used by the server to index its table of inodes;
//   - a rights field, one bit per permitted operation;
//   - a 48-bit check field that protects the capability against forging and
//     tampering.
//
// The check-field scheme is the one-way-function variant described in
// "Using Sparse Capabilities in a Distributed Operating System" (Tanenbaum,
// Mullender, van Renesse, ICDCS 1986), which the paper cites as [12]: every
// object carries a large random number R kept in its inode. The owner
// capability has all rights bits set and check field R. A restricted
// capability with rights r has check field F(R, r) for a publicly known
// one-way function F, so holders of the owner capability can restrict it
// locally, but nobody can amplify rights without inverting F.
package capability

import (
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/hex"
	"errors"
	"fmt"
)

// Rights is a bitmask of operations the capability holder may invoke.
type Rights uint8

// Rights bits understood by the Bullet server and the directory server.
// Servers are free to assign their own meanings; these are the conventional
// assignments used throughout this repository.
const (
	RightRead   Rights = 1 << iota // retrieve the object's contents
	RightCreate                    // create new objects / derive new files
	RightDelete                    // destroy the object
	RightModify                    // directory: enter/replace/remove rows
	RightList                      // directory: enumerate rows
	RightAdmin                     // administrative operations
	rightSpare6
	rightSpare7

	// RightsAll marks an owner capability; its check field is the object's
	// random number itself.
	RightsAll Rights = 0xFF
)

// Has reports whether r includes every bit of want.
func (r Rights) Has(want Rights) bool { return r&want == want }

// PortLen, ObjectLen, RightsLen and CheckLen describe the wire encoding of a
// capability: 6 + 3 + 1 + 6 = 16 bytes, exactly as in Amoeba.
const (
	PortLen   = 6
	ObjectLen = 3
	RightsLen = 1
	CheckLen  = 6

	// EncodedLen is the size of a marshalled capability in bytes.
	EncodedLen = PortLen + ObjectLen + RightsLen + CheckLen

	// MaxObject is the largest representable object number (24 bits).
	MaxObject = 1<<24 - 1
)

// Port identifies a server. It is a 48-bit location-independent number
// chosen by the server and advertised to its clients (paper §2.1).
type Port [PortLen]byte

// Check is the 48-bit field protecting a capability from forgery.
type Check [CheckLen]byte

// Random is the per-object secret stored in the object's inode. It is the
// key from which all valid check fields for the object derive.
type Random [CheckLen]byte

// Capability addresses and protects one object.
type Capability struct {
	Port   Port
	Object uint32 // only the low 24 bits are encoded
	Rights Rights
	Check  Check
}

// Errors returned by this package.
var (
	// ErrBadCheck means the check field does not validate against the
	// object's random number: the capability is forged or corrupted.
	ErrBadCheck = errors.New("capability: check field invalid")

	// ErrBadRights means an operation required rights the capability does
	// not carry.
	ErrBadRights = errors.New("capability: insufficient rights")

	// ErrObjectRange means an object number does not fit in 24 bits.
	ErrObjectRange = errors.New("capability: object number out of range")

	// ErrEncoding means a wire or textual capability encoding is malformed.
	ErrEncoding = errors.New("capability: malformed encoding")
)

// NewPort draws a fresh random server port.
func NewPort() (Port, error) {
	var p Port
	if _, err := rand.Read(p[:]); err != nil {
		return Port{}, fmt.Errorf("capability: generating port: %w", err)
	}
	return p, nil
}

// NewRandom draws a fresh per-object random number. The Bullet server calls
// this once per created file and stores the result in the file's inode.
func NewRandom() (Random, error) {
	var r Random
	if _, err := rand.Read(r[:]); err != nil {
		return Random{}, fmt.Errorf("capability: generating random: %w", err)
	}
	return r, nil
}

// IsZero reports whether r is the all-zero value. A zero random marks a free
// inode on disk, so live objects must never use it; NewRandom retries.
//
//lint:ignore ctcmp comparison against the public all-zero free-inode marker, not a secret-vs-secret check
func (r Random) IsZero() bool { return r == Random{} }

// onewayCheck computes F(R, rights): the check field of a capability with
// restricted rights. F is SHA-256 truncated to 48 bits, keyed by the
// object's random number. SHA-256 is preimage resistant, which is the only
// property the scheme needs.
func onewayCheck(r Random, rights Rights) Check {
	var buf [CheckLen + 1]byte
	copy(buf[:], r[:])
	buf[CheckLen] = byte(rights)
	sum := sha256.Sum256(buf[:])
	var c Check
	copy(c[:], sum[:CheckLen])
	return c
}

// Owner constructs the owner capability for an object: all rights set and
// the check field equal to the object's random number. Servers return this
// from their create operations.
func Owner(port Port, object uint32, r Random) Capability {
	return Capability{
		Port:   port,
		Object: object & MaxObject,
		Rights: RightsAll,
		Check:  Check(r),
	}
}

// Restrict derives a capability carrying only the rights in mask. It can be
// computed by any holder of the owner capability without contacting the
// server, because F is public. Restricting an already-restricted capability
// is not possible under this scheme (the random number is not recoverable
// from F(R, r)); such calls return ErrBadRights.
func Restrict(c Capability, mask Rights) (Capability, error) {
	if c.Rights != RightsAll {
		return Capability{}, fmt.Errorf("restricting non-owner capability: %w", ErrBadRights)
	}
	if mask == RightsAll {
		return c, nil
	}
	return Capability{
		Port:   c.Port,
		Object: c.Object,
		Rights: mask,
		Check:  onewayCheck(Random(c.Check), mask),
	}, nil
}

// Verify checks c against the object's stored random number and returns the
// rights it conveys. It implements the server-side validation from paper
// §2.1: an owner capability must present R itself; a restricted capability
// with rights r must present F(R, r).
// Both comparisons are constant time: a short-circuiting == would tell a
// forger, through reply latency, how many leading check bytes matched, and
// the check field is all that stands between a client and rights
// amplification.
func Verify(c Capability, r Random) (Rights, error) {
	if c.Rights == RightsAll {
		if subtle.ConstantTimeCompare(c.Check[:], r[:]) == 1 {
			return RightsAll, nil
		}
		return 0, ErrBadCheck
	}
	want := onewayCheck(r, c.Rights)
	if subtle.ConstantTimeCompare(want[:], c.Check[:]) == 1 {
		return c.Rights, nil
	}
	return 0, ErrBadCheck
}

// Require verifies c and additionally demands that it carries all rights in
// want, returning ErrBadRights otherwise.
func Require(c Capability, r Random, want Rights) error {
	got, err := Verify(c, r)
	if err != nil {
		return err
	}
	if !got.Has(want) {
		return fmt.Errorf("need rights %08b, have %08b: %w", want, got, ErrBadRights)
	}
	return nil
}

// MarshalBinary encodes c into the 16-byte Amoeba wire format.
func (c Capability) MarshalBinary() ([]byte, error) {
	if c.Object > MaxObject {
		return nil, ErrObjectRange
	}
	buf := make([]byte, EncodedLen)
	copy(buf[0:PortLen], c.Port[:])
	buf[PortLen+0] = byte(c.Object >> 16)
	buf[PortLen+1] = byte(c.Object >> 8)
	buf[PortLen+2] = byte(c.Object)
	buf[PortLen+ObjectLen] = byte(c.Rights)
	copy(buf[PortLen+ObjectLen+RightsLen:], c.Check[:])
	return buf, nil
}

// UnmarshalBinary decodes the 16-byte wire format into c.
func (c *Capability) UnmarshalBinary(data []byte) error {
	if len(data) != EncodedLen {
		return fmt.Errorf("encoded length %d, want %d: %w", len(data), EncodedLen, ErrEncoding)
	}
	copy(c.Port[:], data[0:PortLen])
	c.Object = uint32(data[PortLen])<<16 | uint32(data[PortLen+1])<<8 | uint32(data[PortLen+2])
	c.Rights = Rights(data[PortLen+ObjectLen])
	copy(c.Check[:], data[PortLen+ObjectLen+RightsLen:])
	return nil
}

// String renders the capability in the conventional textual form
// port:object:rights:check, all hex. It is parseable by Parse.
func (c Capability) String() string {
	return fmt.Sprintf("%s:%06x:%02x:%s",
		hex.EncodeToString(c.Port[:]), c.Object&MaxObject, byte(c.Rights),
		hex.EncodeToString(c.Check[:]))
}

// Parse decodes the textual form produced by String.
func Parse(s string) (Capability, error) {
	var c Capability
	parts := splitN(s, ':', 4)
	if len(parts) != 4 {
		return Capability{}, fmt.Errorf("parse %q: want 4 colon-separated fields: %w", s, ErrEncoding)
	}
	pb, err := hex.DecodeString(parts[0])
	if err != nil || len(pb) != PortLen {
		return Capability{}, fmt.Errorf("parse port %q: %w", parts[0], ErrEncoding)
	}
	copy(c.Port[:], pb)
	ob, err := hex.DecodeString(parts[1])
	if err != nil || len(ob) != ObjectLen {
		return Capability{}, fmt.Errorf("parse object %q: %w", parts[1], ErrEncoding)
	}
	c.Object = uint32(ob[0])<<16 | uint32(ob[1])<<8 | uint32(ob[2])
	rb, err := hex.DecodeString(parts[2])
	if err != nil || len(rb) != RightsLen {
		return Capability{}, fmt.Errorf("parse rights %q: %w", parts[2], ErrEncoding)
	}
	c.Rights = Rights(rb[0])
	cb, err := hex.DecodeString(parts[3])
	if err != nil || len(cb) != CheckLen {
		return Capability{}, fmt.Errorf("parse check %q: %w", parts[3], ErrEncoding)
	}
	copy(c.Check[:], cb)
	return c, nil
}

func splitN(s string, sep byte, n int) []string {
	out := make([]string, 0, n)
	start := 0
	for i := 0; i < len(s) && len(out) < n-1; i++ {
		if s[i] == sep {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return append(out, s[start:])
}

// Key returns a comparable identity for the object the capability names,
// ignoring rights and check. Two capabilities for the same object map to the
// same key; useful for client-side caches of immutable files.
type Key struct {
	Port   Port
	Object uint32
}

// Key returns the object identity of c.
func (c Capability) Key() Key { return Key{Port: c.Port, Object: c.Object} }

// PortFromString derives a deterministic port from a human-readable service
// name. Useful in examples and tests where a well-known port is convenient;
// production servers should draw random ports with NewPort.
func PortFromString(name string) Port {
	sum := sha256.Sum256([]byte(name))
	var p Port
	copy(p[:], sum[:PortLen])
	return p
}

// Encode appends the wire form of c to dst and returns the extended slice.
func Encode(dst []byte, c Capability) []byte {
	c.Object &= MaxObject
	b, _ := c.MarshalBinary() // cannot fail: object is masked
	return append(dst, b...)
}

// Decode reads one capability from the front of src, returning the
// capability and the remaining bytes.
func Decode(src []byte) (Capability, []byte, error) {
	var c Capability
	if len(src) < EncodedLen {
		return c, src, fmt.Errorf("short buffer (%d bytes): %w", len(src), ErrEncoding)
	}
	if err := c.UnmarshalBinary(src[:EncodedLen]); err != nil {
		return c, src, err
	}
	return c, src[EncodedLen:], nil
}
