package bulletsvc

import (
	"sync"
	"time"

	"bulletfs/internal/rpc"
	"bulletfs/internal/trace"
)

// Create sessions: the streaming CREATE. A client whose file exceeds the
// request payload limit (or that produces it incrementally) opens a
// session (CmdCreateStart), appends chunks (CmdCreateWrite), and commits
// (CmdCreateCommit) — the engine then stores the accumulated bytes as
// ONE ordinary create, so the file lands in a single contiguous extent
// with the usual capability, checksum and replication semantics. Every
// session command is a normal single-frame transaction, so the retry
// machinery's duplicate suppression covers it; CmdCreateWrite is
// additionally self-describing (the chunk's offset must equal the bytes
// accumulated so far), so a replayed write past the dedup window is
// recognized and acknowledged without corrupting the buffer.

const (
	// maxCreateSessions bounds concurrently open sessions.
	maxCreateSessions = 64
	// sessionIdleExpiry is how long an untouched session survives before
	// a later CmdCreateStart may sweep it (a client that died mid-upload).
	sessionIdleExpiry = 5 * time.Minute
)

// createSession is one in-progress streaming create.
type createSession struct {
	buf      []byte
	lastUsed time.Time
}

// sessionTable holds a service's open create sessions, bounded by count
// and by total buffered bytes.
type sessionTable struct {
	mu       sync.Mutex
	sessions map[uint64]*createSession // guarded by mu
	buffered int64                     // guarded by mu; total buffered bytes
}

// handleSession serves the four create-session commands (single-frame,
// called from HandleTraced's switch).
func (s *Service) handleSession(tc *trace.Ctx, parent *trace.Span, req rpc.Header, payload []byte) (rpc.Header, []byte) {
	t := &s.sess
	switch req.Command {
	case CmdCreateStart:
		id, err := rpc.NewTxID()
		if err != nil {
			return rpc.ReplyErr(rpc.StatusInternal), nil
		}
		t.mu.Lock()
		defer t.mu.Unlock()
		if t.sessions == nil {
			t.sessions = make(map[uint64]*createSession)
		}
		// Sweep sessions whose clients have gone quiet; a live uploader
		// touches its session every chunk.
		now := time.Now()
		for sid, cs := range t.sessions {
			if now.Sub(cs.lastUsed) > sessionIdleExpiry {
				t.buffered -= int64(len(cs.buf))
				delete(t.sessions, sid)
			}
		}
		if len(t.sessions) >= maxCreateSessions {
			return rpc.ReplyErr(rpc.StatusBusy), nil
		}
		t.sessions[id] = &createSession{lastUsed: now}
		return rpc.Header{Status: rpc.StatusOK, Arg: id}, nil

	case CmdCreateWrite:
		t.mu.Lock()
		defer t.mu.Unlock()
		cs, ok := t.sessions[req.Arg]
		if !ok {
			return rpc.ReplyErr(rpc.StatusNotFound), nil
		}
		cs.lastUsed = time.Now()
		off := int64(req.Arg2)
		if off != int64(len(cs.buf)) {
			// A duplicate of a chunk already absorbed (retry whose first
			// attempt landed but whose reply was lost, past the dedup
			// window) is acknowledged as a no-op; anything else is a gap
			// or overlap the client must not produce.
			if off+int64(len(payload)) <= int64(len(cs.buf)) {
				return rpc.ReplyOK(), nil
			}
			return rpc.ReplyErr(rpc.StatusBadOffset), nil
		}
		max := s.engine.MaxFileSize()
		if int64(len(cs.buf))+int64(len(payload)) > max {
			return rpc.ReplyErr(rpc.StatusTooLarge), nil
		}
		if t.buffered+int64(len(payload)) > 2*max {
			return rpc.ReplyErr(rpc.StatusBusy), nil
		}
		// The request payload is pooled (dead after this call): copy.
		cs.buf = append(cs.buf, payload...)
		t.buffered += int64(len(payload))
		return rpc.ReplyOK(), nil

	case CmdCreateCommit:
		t.mu.Lock()
		cs, ok := t.sessions[req.Arg]
		if !ok {
			t.mu.Unlock()
			return rpc.ReplyErr(rpc.StatusNotFound), nil
		}
		delete(t.sessions, req.Arg)
		t.buffered -= int64(len(cs.buf))
		t.mu.Unlock()
		// The session's opener proved only possession of the server port —
		// the same admission CREATE itself requires (paper §2.2).
		//lint:ignore rightscheck the commit mints the object and its capability, like CREATE; nothing pre-existing to check
		c, err := s.engine.CreateTraced(tc, parent, cs.buf, int(req.Arg2))
		if err != nil {
			return rpc.ReplyErr(StatusOf(err)), nil
		}
		return rpc.Header{Status: rpc.StatusOK, Cap: c}, nil

	case CmdCreateAbort:
		t.mu.Lock()
		defer t.mu.Unlock()
		if cs, ok := t.sessions[req.Arg]; ok {
			t.buffered -= int64(len(cs.buf))
			delete(t.sessions, req.Arg)
		}
		// Aborting an unknown (already swept or committed) session is OK:
		// the client only wants it gone.
		return rpc.ReplyOK(), nil

	default:
		return rpc.ReplyErr(rpc.StatusBadCommand), nil
	}
}
