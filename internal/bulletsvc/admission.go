package bulletsvc

import (
	"sync/atomic"

	"bulletfs/internal/stats"
)

// Admission bounds the number of file operations the server processes
// concurrently. The paper's closed-loop evaluation never saturates the
// server — one client cannot — but an open-loop world (thousands of
// independent clients) can offer more work than the disks and CPU absorb,
// and an unbounded server then queues without limit: latency grows with
// the backlog and every client times out together. Admission control
// converts that collapse into explicit load shedding: past the in-flight
// limit the service answers StatusBusy immediately instead of queueing,
// and clients back off on the Retrier's jittered schedule (SetRetryBusy).
//
// Only file operations (CREATE, SIZE, READ, READ_RANGE, DELETE, MODIFY,
// APPEND) are admission-controlled. The observability and maintenance
// surface (STAT, STATS, TRACE, SALVAGE, SYNC, the compactors) bypasses the
// limiter so operators can inspect and drain a saturated server.
//
// All methods are safe for concurrent use.
type Admission struct {
	limit int64 // immutable after construction; 0 = unlimited
	// manualRelease is set (before serving) by harnesses that retire
	// requests on their own timeline: the service then enters the limiter
	// on dispatch but never releases, and the harness calls Release when
	// the request's simulated service completes. Real servers leave it
	// false: a token spans the handler call.
	manualRelease bool

	inflight atomic.Int64
	peak     atomic.Int64
	admitted atomic.Int64
	shed     atomic.Int64
}

// NewAdmission returns a limiter admitting at most limit in-flight file
// operations. limit <= 0 means unlimited: the limiter still counts
// in-flight and peak occupancy but never sheds.
func NewAdmission(limit int) *Admission {
	if limit < 0 {
		limit = 0
	}
	return &Admission{limit: int64(limit)}
}

// SetManualRelease switches the limiter to harness-driven token release
// (see the type comment). Call before the service starts handling
// requests; flipping it mid-flight would strand or double-release tokens.
func (a *Admission) SetManualRelease(on bool) { a.manualRelease = on }

// TryEnter claims one in-flight slot. It returns false — and counts a
// shed — when the limiter is at its limit.
func (a *Admission) TryEnter() bool {
	v := a.inflight.Add(1)
	if a.limit > 0 && v > a.limit {
		a.inflight.Add(-1)
		a.shed.Add(1)
		return false
	}
	a.admitted.Add(1)
	for {
		cur := a.peak.Load()
		if v <= cur || a.peak.CompareAndSwap(cur, v) {
			break
		}
	}
	return true
}

// Release returns one in-flight slot claimed by a successful TryEnter.
func (a *Admission) Release() { a.inflight.Add(-1) }

// Limit returns the configured in-flight limit (0 = unlimited).
func (a *Admission) Limit() int64 { return a.limit }

// InFlight returns the current number of admitted, unreleased operations.
func (a *Admission) InFlight() int64 { return a.inflight.Load() }

// Peak returns the highest in-flight occupancy observed.
func (a *Admission) Peak() int64 { return a.peak.Load() }

// Admitted returns the total number of operations admitted.
func (a *Admission) Admitted() int64 { return a.admitted.Load() }

// Shed returns the total number of operations refused with StatusBusy.
func (a *Admission) Shed() int64 { return a.shed.Load() }

// AttachMetrics publishes the limiter's state in reg under rpc.admission_*
// gauges, polled at snapshot time like the cache counters: the limiter's
// own atomics stay the source of truth and the hot path never touches the
// registry.
func (a *Admission) AttachMetrics(reg *stats.Registry) {
	reg.GaugeFunc("rpc.admission_limit", a.Limit)
	reg.GaugeFunc("rpc.admission_inflight", a.InFlight)
	reg.GaugeFunc("rpc.admission_peak", a.Peak)
	reg.GaugeFunc("rpc.admission_admitted", a.Admitted)
	reg.GaugeFunc("rpc.admission_shed", a.Shed)
}

// admissionControlled reports whether cmd is a file operation subject to
// admission control.
func admissionControlled(cmd uint32) bool {
	switch cmd {
	case CmdCreate, CmdSize, CmdRead, CmdDelete, CmdModify, CmdAppend, CmdReadRange,
		CmdReadStream, CmdCreateStart, CmdCreateWrite, CmdCreateCommit:
		// CmdCreateAbort stays unthrottled: refusing a cleanup would
		// strand session buffers on a saturated server.
		return true
	default:
		return false
	}
}
