package bulletsvc

import (
	"sync"
	"testing"

	"bulletfs/internal/rpc"
	"bulletfs/internal/stats"
)

func TestAdmissionTryEnterRelease(t *testing.T) {
	a := NewAdmission(2)
	if !a.TryEnter() || !a.TryEnter() {
		t.Fatal("limiter refused below its limit")
	}
	if a.TryEnter() {
		t.Fatal("limiter admitted past its limit")
	}
	if a.InFlight() != 2 || a.Peak() != 2 || a.Admitted() != 2 || a.Shed() != 1 {
		t.Fatalf("counters = inflight %d peak %d admitted %d shed %d",
			a.InFlight(), a.Peak(), a.Admitted(), a.Shed())
	}
	a.Release()
	if !a.TryEnter() {
		t.Fatal("limiter refused after a release")
	}
	a.Release()
	a.Release()
	if a.InFlight() != 0 {
		t.Fatalf("inflight = %d after releasing everything", a.InFlight())
	}
}

func TestAdmissionUnlimitedNeverSheds(t *testing.T) {
	a := NewAdmission(0)
	for i := 0; i < 100; i++ {
		if !a.TryEnter() {
			t.Fatal("unlimited limiter shed")
		}
	}
	if a.Shed() != 0 || a.Peak() != 100 {
		t.Fatalf("shed %d peak %d", a.Shed(), a.Peak())
	}
}

// The failed-entry path must fully undo its increment even under races —
// otherwise sheds leak phantom in-flight slots and the limiter wedges shut.
func TestAdmissionConcurrentNoLeak(t *testing.T) {
	a := NewAdmission(4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if a.TryEnter() {
					a.Release()
				}
			}
		}()
	}
	wg.Wait()
	if a.InFlight() != 0 {
		t.Fatalf("inflight = %d after all goroutines released", a.InFlight())
	}
	if a.Peak() > 4 {
		t.Fatalf("peak = %d past limit 4", a.Peak())
	}
	if a.Admitted()+a.Shed() != 8000 {
		t.Fatalf("admitted %d + shed %d != 8000 attempts", a.Admitted(), a.Shed())
	}
}

// An attached service sheds file operations with StatusBusy at the limit
// while the observability surface keeps working.
func TestServiceShedsAtLimit(t *testing.T) {
	svc, _ := newService(t)
	adm := NewAdmission(1)
	adm.SetManualRelease(true) // hold the single token ourselves
	svc.AttachAdmission(adm)

	rep, _ := svc.Handle(rpc.Header{Command: CmdCreate, Arg: 2}, []byte("fits"))
	if rep.Status != rpc.StatusOK {
		t.Fatalf("first create status = %v", rep.Status)
	}
	c := rep.Cap

	// The token is still held: the next file operation must be shed...
	rep, _ = svc.Handle(rpc.Header{Command: CmdRead, Cap: c}, nil)
	if rep.Status != rpc.StatusBusy {
		t.Fatalf("read at limit status = %v, want StatusBusy", rep.Status)
	}
	if adm.Shed() != 1 {
		t.Fatalf("shed counter = %d, want 1", adm.Shed())
	}
	// ...but maintenance commands bypass the limiter.
	rep, _ = svc.Handle(rpc.Header{Command: CmdStat}, nil)
	if rep.Status != rpc.StatusOK {
		t.Fatalf("stat under full limiter status = %v", rep.Status)
	}

	adm.Release()
	rep, _ = svc.Handle(rpc.Header{Command: CmdRead, Cap: c}, nil)
	if rep.Status != rpc.StatusOK {
		t.Fatalf("read after release status = %v", rep.Status)
	}
	adm.Release()
	if adm.InFlight() != 0 {
		t.Fatalf("inflight = %d", adm.InFlight())
	}
}

// In the default (non-manual) mode a token spans exactly one handler call,
// so sequential requests never shed even at limit 1.
func TestServiceAutoReleaseSequential(t *testing.T) {
	svc, _ := newService(t)
	adm := NewAdmission(1)
	svc.AttachAdmission(adm)

	var c struct{ cap rpc.Header }
	for i := 0; i < 5; i++ {
		rep, _ := svc.Handle(rpc.Header{Command: CmdCreate, Arg: 2}, []byte("again and again"))
		if rep.Status != rpc.StatusOK {
			t.Fatalf("create %d status = %v", i, rep.Status)
		}
		c.cap = rep
	}
	if adm.Shed() != 0 || adm.InFlight() != 0 || adm.Peak() != 1 {
		t.Fatalf("shed %d inflight %d peak %d; want 0/0/1",
			adm.Shed(), adm.InFlight(), adm.Peak())
	}
	if adm.Admitted() != 5 {
		t.Fatalf("admitted = %d, want 5", adm.Admitted())
	}
}

func TestAdmissionMetricsRegistered(t *testing.T) {
	reg := stats.NewRegistry()
	a := NewAdmission(7)
	a.AttachMetrics(reg)
	a.TryEnter()
	snap := reg.Snapshot()
	want := map[string]int64{
		"rpc.admission_limit":    7,
		"rpc.admission_inflight": 1,
		"rpc.admission_peak":     1,
		"rpc.admission_admitted": 1,
		"rpc.admission_shed":     0,
	}
	for key, val := range want {
		got, ok := snap.Gauges[key]
		if !ok {
			t.Fatalf("gauge %q not in snapshot", key)
		}
		if got != val {
			t.Errorf("gauge %q = %d, want %d", key, got, val)
		}
	}
}
