package bulletsvc

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"

	"bulletfs/internal/stats"
	"bulletfs/internal/trace"
)

// This file is bulletd's HTTP observability surface, factored out of the
// daemon so handler behaviour (routes, Content-Types, exposition format)
// is unit-testable without a TCP listener. The surface is unauthenticated
// like expvar — bind it to a loopback or otherwise protected address.

// DebugMuxConfig wires the observability sources into NewDebugMux. Any
// nil field disables its routes.
type DebugMuxConfig struct {
	// Registry backs GET /debug/stats (indented JSON snapshot) and
	// GET /metrics (OpenMetrics text exposition).
	Registry *stats.Registry
	// Recorder backs GET /debug/traces (?slow=1 for the slow ring).
	Recorder *trace.Recorder
	// Collector backs GET /debug/telemetry: the retained Update ring as
	// JSON, newest last (?n=K limits to the K most recent).
	Collector *stats.Collector
	// Pprof additionally mounts the net/http/pprof handlers under
	// /debug/pprof/ (they register on DefaultServeMux only, so a private
	// mux must mount them explicitly).
	Pprof bool
}

// NewDebugMux builds the HTTP mux bulletd serves on -http.
func NewDebugMux(cfg DebugMuxConfig) *http.ServeMux {
	mux := http.NewServeMux()
	if cfg.Registry != nil {
		mux.HandleFunc("/debug/stats", func(w http.ResponseWriter, r *http.Request) {
			body, err := cfg.Registry.Snapshot().MarshalIndent()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Write(body) //nolint:errcheck // best-effort HTTP reply
		})
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			// Snapshot first; only a marshalling-free render follows, so
			// the header and body stay consistent.
			snap := cfg.Registry.Snapshot()
			w.Header().Set("Content-Type", stats.OpenMetricsContentType)
			_ = snap.WriteOpenMetrics(w) // best-effort HTTP reply
		})
	}
	if cfg.Recorder != nil {
		rec := cfg.Recorder
		mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
			ts := rec.Recent()
			if r.URL.Query().Get("slow") != "" {
				ts = rec.Slow()
			}
			body, err := trace.EncodeTraces(ts)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Write(body) //nolint:errcheck // best-effort HTTP reply
		})
	}
	if cfg.Collector != nil {
		coll := cfg.Collector
		mux.HandleFunc("/debug/telemetry", func(w http.ResponseWriter, r *http.Request) {
			n := 0
			if q := r.URL.Query().Get("n"); q != "" {
				v, err := strconv.Atoi(q)
				if err != nil || v < 0 {
					http.Error(w, "bad n", http.StatusBadRequest)
					return
				}
				n = v
			}
			body, err := json.MarshalIndent(coll.History(n), "", "  ")
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Write(body) //nolint:errcheck // best-effort HTTP reply
		})
	}
	if cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}
