package bulletsvc

import (
	"bytes"
	"testing"

	"bulletfs/internal/rpc"
)

func startSession(t *testing.T, svc *Service) uint64 {
	t.Helper()
	rep, _ := svc.Handle(rpc.Header{Command: CmdCreateStart}, nil)
	if rep.Status != rpc.StatusOK || rep.Arg == 0 {
		t.Fatalf("CreateStart reply = %+v", rep)
	}
	return rep.Arg
}

func TestCreateSessionRoundTrip(t *testing.T) {
	svc, _ := newService(t)
	id := startSession(t, svc)

	chunks := [][]byte{[]byte("the whole "), []byte("file, "), []byte("in pieces")}
	var off uint64
	for _, ch := range chunks {
		rep, _ := svc.Handle(rpc.Header{Command: CmdCreateWrite, Arg: id, Arg2: off}, ch)
		if rep.Status != rpc.StatusOK {
			t.Fatalf("CreateWrite at %d: %v", off, rep.Status)
		}
		off += uint64(len(ch))
	}
	rep, _ := svc.Handle(rpc.Header{Command: CmdCreateCommit, Arg: id, Arg2: 1}, nil)
	if rep.Status != rpc.StatusOK {
		t.Fatalf("CreateCommit: %v", rep.Status)
	}
	want := []byte("the whole file, in pieces")
	got, body := svc.Handle(rpc.Header{Command: CmdRead, Cap: rep.Cap}, nil)
	if got.Status != rpc.StatusOK || !bytes.Equal(body, want) {
		t.Fatalf("Read after commit = %v %q, want %q", got.Status, body, want)
	}

	// The committed session is gone: a second commit is NotFound, not a
	// second file.
	rep, _ = svc.Handle(rpc.Header{Command: CmdCreateCommit, Arg: id, Arg2: 1}, nil)
	if rep.Status != rpc.StatusNotFound {
		t.Fatalf("recommit status = %v, want NotFound", rep.Status)
	}
}

func TestCreateSessionWriteSemantics(t *testing.T) {
	svc, _ := newService(t)
	id := startSession(t, svc)

	if rep, _ := svc.Handle(rpc.Header{Command: CmdCreateWrite, Arg: id, Arg2: 0}, []byte("abcd")); rep.Status != rpc.StatusOK {
		t.Fatalf("first write: %v", rep.Status)
	}
	// A duplicate of an absorbed chunk (retry whose reply was lost) is
	// acknowledged as a no-op.
	if rep, _ := svc.Handle(rpc.Header{Command: CmdCreateWrite, Arg: id, Arg2: 0}, []byte("abcd")); rep.Status != rpc.StatusOK {
		t.Fatalf("duplicate write: %v", rep.Status)
	}
	// A gap is rejected.
	if rep, _ := svc.Handle(rpc.Header{Command: CmdCreateWrite, Arg: id, Arg2: 100}, []byte("x")); rep.Status != rpc.StatusBadOffset {
		t.Fatalf("gap write status = %v, want BadOffset", rep.Status)
	}
	// The duplicate did not double the buffer.
	rep, _ := svc.Handle(rpc.Header{Command: CmdCreateWrite, Arg: id, Arg2: 4}, []byte("efgh"))
	if rep.Status != rpc.StatusOK {
		t.Fatalf("continuation write: %v", rep.Status)
	}
	rep, _ = svc.Handle(rpc.Header{Command: CmdCreateCommit, Arg: id, Arg2: 0}, nil)
	if rep.Status != rpc.StatusOK {
		t.Fatalf("commit: %v", rep.Status)
	}
	if got, body := svc.Handle(rpc.Header{Command: CmdRead, Cap: rep.Cap}, nil); got.Status != rpc.StatusOK || string(body) != "abcdefgh" {
		t.Fatalf("content = %q, want abcdefgh", body)
	}

	// Unknown session: write and commit both NotFound; abort is always OK.
	if rep, _ := svc.Handle(rpc.Header{Command: CmdCreateWrite, Arg: 0xdead, Arg2: 0}, []byte("x")); rep.Status != rpc.StatusNotFound {
		t.Fatalf("unknown-session write = %v", rep.Status)
	}
	if rep, _ := svc.Handle(rpc.Header{Command: CmdCreateAbort, Arg: 0xdead}, nil); rep.Status != rpc.StatusOK {
		t.Fatalf("unknown-session abort = %v", rep.Status)
	}
}

func TestCreateSessionAbortFreesBudget(t *testing.T) {
	svc, _ := newService(t)
	id := startSession(t, svc)
	if rep, _ := svc.Handle(rpc.Header{Command: CmdCreateWrite, Arg: id, Arg2: 0}, []byte("buffered")); rep.Status != rpc.StatusOK {
		t.Fatal("write failed")
	}
	if rep, _ := svc.Handle(rpc.Header{Command: CmdCreateAbort, Arg: id}, nil); rep.Status != rpc.StatusOK {
		t.Fatal("abort failed")
	}
	svc.sess.mu.Lock()
	buffered, open := svc.sess.buffered, len(svc.sess.sessions)
	svc.sess.mu.Unlock()
	if buffered != 0 || open != 0 {
		t.Fatalf("after abort: buffered = %d, sessions = %d; want 0, 0", buffered, open)
	}
	// Aborting again is idempotent.
	if rep, _ := svc.Handle(rpc.Header{Command: CmdCreateAbort, Arg: id}, nil); rep.Status != rpc.StatusOK {
		t.Fatal("re-abort failed")
	}
}

func TestCreateSessionBudgets(t *testing.T) {
	svc, eng := newService(t)
	max := eng.MaxFileSize()

	// Per-session cap: a session may not outgrow the largest storable file.
	id := startSession(t, svc)
	big := make([]byte, max)
	if rep, _ := svc.Handle(rpc.Header{Command: CmdCreateWrite, Arg: id, Arg2: 0}, big); rep.Status != rpc.StatusOK {
		t.Fatalf("max-size write: %v", rep.Status)
	}
	if rep, _ := svc.Handle(rpc.Header{Command: CmdCreateWrite, Arg: id, Arg2: uint64(max)}, []byte("x")); rep.Status != rpc.StatusTooLarge {
		t.Fatalf("overflow write = %v, want TooLarge", rep.Status)
	}

	// Total buffered cap (2x max across all sessions): a third session's
	// write past the budget is shed with Busy, and an abort frees room.
	id2 := startSession(t, svc)
	if rep, _ := svc.Handle(rpc.Header{Command: CmdCreateWrite, Arg: id2, Arg2: 0}, big); rep.Status != rpc.StatusOK {
		t.Fatalf("second max-size write: %v", rep.Status)
	}
	id3 := startSession(t, svc)
	if rep, _ := svc.Handle(rpc.Header{Command: CmdCreateWrite, Arg: id3, Arg2: 0}, []byte("x")); rep.Status != rpc.StatusBusy {
		t.Fatalf("over-budget write = %v, want Busy", rep.Status)
	}
	if rep, _ := svc.Handle(rpc.Header{Command: CmdCreateAbort, Arg: id}, nil); rep.Status != rpc.StatusOK {
		t.Fatal("abort failed")
	}
	if rep, _ := svc.Handle(rpc.Header{Command: CmdCreateWrite, Arg: id3, Arg2: 0}, []byte("x")); rep.Status != rpc.StatusOK {
		t.Fatalf("write after freeing budget = %v", rep.Status)
	}
}

func TestCreateSessionLimit(t *testing.T) {
	svc, _ := newService(t)
	for i := 0; i < maxCreateSessions; i++ {
		startSession(t, svc)
	}
	rep, _ := svc.Handle(rpc.Header{Command: CmdCreateStart}, nil)
	if rep.Status != rpc.StatusBusy {
		t.Fatalf("session %d start = %v, want Busy", maxCreateSessions, rep.Status)
	}
}
