// Package bulletsvc exposes the Bullet engine (internal/bullet) over the
// Amoeba-style RPC layer (internal/rpc): the wire protocol, the server-side
// handler, and the mapping between engine errors and transaction status
// codes. The client stubs live in internal/client.
//
// The protocol mirrors paper §2.2: CREATE, SIZE, READ and DELETE, extended
// with MODIFY/APPEND ("generating a new file based on an existing file",
// §5), a partial read for small-memory clients, and administrative
// operations (stat, sync, compaction).
package bulletsvc

import (
	"encoding/json"
	"errors"
	"time"

	"bulletfs/internal/alloc"
	"bulletfs/internal/bullet"
	"bulletfs/internal/cache"
	"bulletfs/internal/capability"
	"bulletfs/internal/disk"
	"bulletfs/internal/rpc"
	"bulletfs/internal/scrub"
	"bulletfs/internal/stats"
	"bulletfs/internal/trace"
)

// Command codes of the Bullet protocol.
const (
	CmdCreate       uint32 = 1  // payload=data, Arg=p-factor -> reply Cap
	CmdSize         uint32 = 2  // Cap -> reply Arg=size
	CmdRead         uint32 = 3  // Cap -> reply payload=data
	CmdDelete       uint32 = 4  // Cap
	CmdModify       uint32 = 5  // Cap, Arg=offset, Arg2=packed(newSize,pf), payload=patch -> reply Cap
	CmdAppend       uint32 = 6  // Cap, Arg=p-factor, payload=data -> reply Cap
	CmdReadRange    uint32 = 7  // Cap, Arg=offset, Arg2=n -> reply payload
	CmdStat         uint32 = 8  // -> reply payload=JSON ServerStats
	CmdSync         uint32 = 9  // wait for background write-through
	CmdCompactDisk  uint32 = 10 // run the 3 a.m. compactor now
	CmdCompactCache uint32 = 11 // defragment the RAM cache
	CmdStats        uint32 = 12 // Cap (read right) -> reply payload=JSON stats.Snapshot
	CmdTrace        uint32 = 13 // Cap (read right), Arg=selector (TraceRecent/TraceSlow) -> reply payload=JSON []trace.JSONTrace
	CmdSalvage      uint32 = 14 // Cap, Arg=selector (SalvageHealth/SalvageScrub/SalvageRecover), Arg2=replica -> reply payload=JSON HealthReport

	// Streaming extension (see docs/PROTOCOL.md): a chunked read serving
	// large files as a sequence of ranged frames off one cache pin, and a
	// create session accumulating chunks into one contiguous file.
	CmdReadStream   uint32 = 15 // Cap, Arg=offset, Arg2=chunk-size hint -> frames: Arg=chunk offset, Arg2=file size, payload=chunk
	CmdCreateStart  uint32 = 16 // Arg=size hint -> reply Arg=session id
	CmdCreateWrite  uint32 = 17 // Arg=session id, Arg2=offset (== bytes so far), payload=chunk
	CmdCreateCommit uint32 = 18 // Arg=session id, Arg2=p-factor -> reply Cap
	CmdCreateAbort  uint32 = 19 // Arg=session id

	// Streaming telemetry subscription: one frame per collector tick
	// until the client disconnects or the requested count is served.
	CmdWatch uint32 = 20 // Cap (read right), Arg=max updates (0=unbounded) -> frames: Arg=seq, payload=JSON stats.Update
)

// CmdSalvage selectors (the request header's Arg). SalvageHealth needs the
// read right (a report, like stats and traces); the two triggers mutate
// server state and need the admin right.
const (
	SalvageHealth  uint64 = 0 // -> JSON HealthReport
	SalvageScrub   uint64 = 1 // trigger an immediate scrub pass
	SalvageRecover uint64 = 2 // Arg2=replica: start online recovery
)

// CmdTrace selectors (the request header's Arg).
const (
	TraceRecent uint64 = 0 // the flight recorder's recent ring
	TraceSlow   uint64 = 1 // the slow-request ring
)

// CommandName maps a Bullet command code to a short lowercase name, for
// metric keys and diagnostics. Unknown codes return "".
func CommandName(cmd uint32) string {
	switch cmd {
	case CmdCreate:
		return "create"
	case CmdSize:
		return "size"
	case CmdRead:
		return "read"
	case CmdDelete:
		return "delete"
	case CmdModify:
		return "modify"
	case CmdAppend:
		return "append"
	case CmdReadRange:
		return "readrange"
	case CmdStat:
		return "stat"
	case CmdSync:
		return "sync"
	case CmdCompactDisk:
		return "compactdisk"
	case CmdCompactCache:
		return "compactcache"
	case CmdStats:
		return "stats"
	case CmdTrace:
		return "trace"
	case CmdSalvage:
		return "salvage"
	case CmdReadStream:
		return "readstream"
	case CmdCreateStart:
		return "createstart"
	case CmdCreateWrite:
		return "createwrite"
	case CmdCreateCommit:
		return "createcommit"
	case CmdCreateAbort:
		return "createabort"
	case CmdWatch:
		return "watch"
	default:
		return ""
	}
}

// PackModifyArg2 packs the newSize (-1 for "natural size") and p-factor of
// a CmdModify into the header's second argument: p-factor in the top 16
// bits, newSize+1 in the low 48 (file sizes are < 2^32, so this is ample).
func PackModifyArg2(newSize int64, pfactor int) uint64 {
	return uint64(pfactor)<<48 | (uint64(newSize+1) & (1<<48 - 1))
}

// UnpackModifyArg2 reverses PackModifyArg2.
func UnpackModifyArg2(arg2 uint64) (newSize int64, pfactor int) {
	pfactor = int(arg2 >> 48)
	newSize = int64(arg2&(1<<48-1)) - 1
	return newSize, pfactor
}

// ServerStats is the JSON payload of CmdStat.
type ServerStats struct {
	Engine      bullet.Stats `json:"engine"`
	Cache       cache.Stats  `json:"cache"`
	Disk        alloc.Stats  `json:"disk"`
	LiveFiles   int          `json:"liveFiles"`
	MaxFileSize int64        `json:"maxFileSize"`
}

// StatusOf maps an engine/capability error onto a transaction status.
func StatusOf(err error) rpc.Status {
	switch {
	case err == nil:
		return rpc.StatusOK
	case errors.Is(err, bullet.ErrNoSuchFile):
		return rpc.StatusNoSuchObject
	case errors.Is(err, capability.ErrBadCheck):
		return rpc.StatusBadCheck
	case errors.Is(err, capability.ErrBadRights):
		return rpc.StatusBadRights
	case errors.Is(err, bullet.ErrTooLarge), errors.Is(err, cache.ErrTooLarge):
		return rpc.StatusTooLarge
	case errors.Is(err, bullet.ErrDiskFull):
		return rpc.StatusNoSpace
	case errors.Is(err, bullet.ErrBadPFactor):
		return rpc.StatusBadPFactor
	case errors.Is(err, bullet.ErrBadOffset):
		return rpc.StatusBadOffset
	case errors.Is(err, disk.ErrRecovering):
		return rpc.StatusBusy
	case errors.Is(err, bullet.ErrBadReplica):
		return rpc.StatusBadRequest
	case errors.Is(err, trace.ErrDeadlineExceeded):
		return rpc.StatusDeadlineExceeded
	default:
		return rpc.StatusInternal
	}
}

// ErrorOf maps a reply status back onto the canonical error values, so
// errors.Is(err, bullet.ErrNoSuchFile) works on the client side of the
// wire.
func ErrorOf(st rpc.Status) error {
	switch st {
	case rpc.StatusOK:
		return nil
	case rpc.StatusNoSuchObject:
		return bullet.ErrNoSuchFile
	case rpc.StatusBadCheck:
		return capability.ErrBadCheck
	case rpc.StatusBadRights:
		return capability.ErrBadRights
	case rpc.StatusTooLarge:
		return bullet.ErrTooLarge
	case rpc.StatusNoSpace:
		return bullet.ErrDiskFull
	case rpc.StatusBadPFactor:
		return bullet.ErrBadPFactor
	case rpc.StatusBadOffset:
		return bullet.ErrBadOffset
	case rpc.StatusBusy:
		return disk.ErrRecovering
	case rpc.StatusDeadlineExceeded:
		return trace.ErrDeadlineExceeded
	default:
		return rpc.Errf(st, "server error")
	}
}

// HealthReport is the JSON payload of CmdSalvage's health selector: the
// engine's self-diagnosis plus, when a scrubber is attached, its progress.
type HealthReport struct {
	bullet.HealthReport
	Scrub *scrub.Status `json:"scrub,omitempty"`
}

// Service adapts a Bullet engine to an rpc.Handler.
type Service struct {
	engine   *bullet.Server
	rec      *trace.Recorder  // optional; serves CmdTrace when non-nil
	scrubber *scrub.Scrubber  // optional; SALVAGE's scrub trigger, paused during compaction
	adm      *Admission       // optional; bounds in-flight file operations, sheds with StatusBusy
	coll     *stats.Collector // optional; serves CmdWatch when non-nil
	sess     sessionTable     // open streaming-create sessions

	// deadlineSheds counts requests refused at the door because their
	// deadline budget was already spent on arrival (queueing, transport).
	// Distinct from admission sheds: the server had room, the caller had
	// no time left to use it.
	deadlineSheds stats.Counter
}

// New wraps engine.
func New(engine *bullet.Server) *Service {
	s := &Service{engine: engine}
	engine.Metrics().GaugeFunc("rpc.deadline_sheds", s.deadlineSheds.Load)
	return s
}

// DeadlineSheds returns how many requests were refused with
// StatusDeadlineExceeded before any work was done on them.
func (s *Service) DeadlineSheds() int64 { return s.deadlineSheds.Load() }

// shedExpired reports whether the request arrived with its deadline
// budget already spent and must be refused with StatusDeadlineExceeded.
// Only admission-controlled (file) operations shed: control-plane
// queries are cheap and answering them late still helps. The check sits
// before any engine work — a deadline never cancels a mutation midway
// (see internal/trace/deadline.go on why).
func (s *Service) shedExpired(tc *trace.Ctx, parent *trace.Span, cmd uint32) bool {
	if !admissionControlled(cmd) || !tc.DeadlineExceeded() {
		return false
	}
	s.deadlineSheds.Inc()
	if sp := tc.Add(parent, trace.LayerRPC, trace.OpAdmit, time.Now(), 0); sp != nil {
		sp.Status = int32(rpc.StatusDeadlineExceeded)
	}
	return true
}

// AttachRecorder wires the flight recorder the service serves over
// CmdTrace. Call before Register; nil leaves CmdTrace answering
// StatusBadCommand (tracing not enabled).
func (s *Service) AttachRecorder(rec *trace.Recorder) { s.rec = rec }

// AttachScrubber wires the background scrubber: SALVAGE's scrub selector
// triggers a pass on it, the health report includes its progress, and
// disk compaction pauses it for the duration (the two otherwise fight
// over the metadata lock while extents move). Call before Register.
func (s *Service) AttachScrubber(sc *scrub.Scrubber) { s.scrubber = sc }

// AttachAdmission wires an in-flight limiter in front of the file
// operations: once limit operations are in flight, further ones are
// refused immediately with StatusBusy instead of queueing (see Admission).
// Call before Register; nil (the default) leaves admission unlimited.
func (s *Service) AttachAdmission(a *Admission) { s.adm = a }

// Admission returns the attached limiter (nil if none).
func (s *Service) Admission() *Admission { return s.adm }

// AttachCollector wires the telemetry collector the service serves over
// CmdWatch. Call before Register; nil leaves CmdWatch answering
// StatusBadCommand (streaming telemetry not enabled).
func (s *Service) AttachCollector(c *stats.Collector) { s.coll = c }

// Register installs the service on mux under the engine's port. The
// stream registration lets READ/READ_RANGE replies borrow the engine's
// pinned cache bytes (zero-copy; see HandleStream) and serves the
// multi-frame READSTREAM; single-frame transports see stream replies
// assembled for them by the mux. Span contexts thread through either
// way, so every layer hangs its spans under the RPC root span.
func (s *Service) Register(mux *rpc.Mux) {
	mux.RegisterStream(s.engine.Port(), s.HandleStream)
}

// Handle processes one Bullet transaction without tracing (tests and
// in-process callers).
func (s *Service) Handle(req rpc.Header, payload []byte) (rpc.Header, []byte) {
	return s.HandleTraced(nil, nil, req, payload)
}

// HandleTraced processes one Bullet transaction, hanging engine spans
// under parent. tc may be nil (untraced).
func (s *Service) HandleTraced(tc *trace.Ctx, parent *trace.Span, req rpc.Header, payload []byte) (rpc.Header, []byte) {
	if s.shedExpired(tc, parent, req.Command) {
		return rpc.ReplyErr(rpc.StatusDeadlineExceeded), nil
	}
	if s.adm != nil && admissionControlled(req.Command) {
		sp := tc.Begin(parent, trace.LayerRPC, trace.OpAdmit)
		ok := s.adm.TryEnter()
		if !ok && sp != nil {
			sp.Status = int32(rpc.StatusBusy)
		}
		tc.End(sp)
		if !ok {
			return rpc.ReplyErr(rpc.StatusBusy), nil
		}
		if !s.adm.manualRelease {
			defer s.adm.Release()
		}
	}
	switch req.Command {
	case CmdCreate:
		// CREATE mints a brand-new object and returns its capability;
		// there is no pre-existing capability to verify (paper §2.2 —
		// possession of the server port is the only admission).
		//lint:ignore rightscheck CREATE mints the object and its capability; nothing pre-existing to check
		c, err := s.engine.CreateTraced(tc, parent, payload, int(req.Arg))
		if err != nil {
			return rpc.ReplyErr(StatusOf(err)), nil
		}
		return rpc.Header{Status: rpc.StatusOK, Cap: c}, nil

	case CmdSize:
		n, err := s.engine.SizeTraced(tc, parent, req.Cap)
		if err != nil {
			return rpc.ReplyErr(StatusOf(err)), nil
		}
		return rpc.Header{Status: rpc.StatusOK, Arg: uint64(n)}, nil

	case CmdRead:
		data, err := s.engine.ReadTraced(tc, parent, req.Cap)
		if err != nil {
			return rpc.ReplyErr(StatusOf(err)), nil
		}
		return rpc.ReplyOK(), data

	case CmdDelete:
		if err := s.engine.DeleteTraced(tc, parent, req.Cap); err != nil {
			return rpc.ReplyErr(StatusOf(err)), nil
		}
		return rpc.ReplyOK(), nil

	case CmdModify:
		newSize, pfactor := UnpackModifyArg2(req.Arg2)
		c, err := s.engine.ModifyTraced(tc, parent, req.Cap, int64(req.Arg), payload, newSize, pfactor)
		if err != nil {
			return rpc.ReplyErr(StatusOf(err)), nil
		}
		return rpc.Header{Status: rpc.StatusOK, Cap: c}, nil

	case CmdAppend:
		c, err := s.engine.AppendTraced(tc, parent, req.Cap, payload, int(req.Arg))
		if err != nil {
			return rpc.ReplyErr(StatusOf(err)), nil
		}
		return rpc.Header{Status: rpc.StatusOK, Cap: c}, nil

	case CmdReadRange:
		data, err := s.engine.ReadRangeTraced(tc, parent, req.Cap, int64(req.Arg), int64(req.Arg2))
		if err != nil {
			return rpc.ReplyErr(StatusOf(err)), nil
		}
		return rpc.ReplyOK(), data

	case CmdCreateStart, CmdCreateWrite, CmdCreateCommit, CmdCreateAbort:
		return s.handleSession(tc, parent, req, payload)

	case CmdTrace:
		return s.handleTrace(tc, parent, req)

	case CmdSalvage:
		return s.handleSalvage(tc, parent, req)

	case CmdStat:
		stats := ServerStats{
			Engine:      s.engine.Stats(),
			Cache:       s.engine.CacheStats(),
			Disk:        s.engine.DiskStats(),
			LiveFiles:   s.engine.Live(),
			MaxFileSize: s.engine.MaxFileSize(),
		}
		body, err := json.Marshal(stats)
		if err != nil {
			return rpc.ReplyErr(rpc.StatusInternal), nil
		}
		return rpc.ReplyOK(), body

	case CmdStats:
		snap, err := s.engine.StatsSnapshot(req.Cap)
		if err != nil {
			return rpc.ReplyErr(StatusOf(err)), nil
		}
		body, err := json.Marshal(snap)
		if err != nil {
			return rpc.ReplyErr(rpc.StatusInternal), nil
		}
		return rpc.ReplyOK(), body

	case CmdSync:
		// SYNC, COMPACT_DISK and COMPACT_CACHE are the operator
		// maintenance surface and predate the admin right (PR 5 added it
		// for SALVAGE only). They destroy no data — sync flushes, the
		// compactors reorganize — so they stay open until the planned
		// admin-capability migration; see docs/STATIC_ANALYSIS.md.
		//lint:ignore rightscheck operator maintenance command from before the admin right; flushes but never destroys data
		s.engine.Sync()
		return rpc.ReplyOK(), nil

	case CmdCompactDisk:
		if s.scrubber != nil {
			s.scrubber.Pause()
			defer s.scrubber.Resume()
		}
		//lint:ignore rightscheck operator maintenance command from before the admin right; compaction moves data but never destroys it
		if err := s.engine.CompactDisk(); err != nil {
			return rpc.ReplyErr(StatusOf(err)), nil
		}
		return rpc.ReplyOK(), nil

	case CmdCompactCache:
		//lint:ignore rightscheck operator maintenance command from before the admin right; cache compaction is loss-free by construction
		if err := s.engine.CompactCache(); err != nil {
			return rpc.ReplyErr(StatusOf(err)), nil
		}
		return rpc.ReplyOK(), nil

	default:
		return rpc.ReplyErr(rpc.StatusBadCommand), nil
	}
}

// handleTrace serves CmdTrace: dump the flight recorder's recent or slow
// ring as JSON. Capability-checked like CmdStats — any valid capability
// for a live file with the read right is admission enough, because traces
// (like statistics) are read-only observability.
func (s *Service) handleTrace(tc *trace.Ctx, parent *trace.Span, req rpc.Header) (rpc.Header, []byte) {
	if s.rec == nil {
		return rpc.ReplyErr(rpc.StatusBadCommand), nil
	}
	sp := tc.Begin(parent, trace.LayerEngine, trace.OpTrace)
	defer tc.End(sp)
	if err := s.engine.AuthorizeRead(req.Cap); err != nil {
		if sp != nil {
			sp.Status = 1
		}
		return rpc.ReplyErr(StatusOf(err)), nil
	}
	var ts []trace.Trace
	switch req.Arg {
	case TraceRecent:
		ts = s.rec.Recent()
	case TraceSlow:
		ts = s.rec.Slow()
	default:
		return rpc.ReplyErr(rpc.StatusBadRequest), nil
	}
	body, err := trace.EncodeTraces(ts)
	if err != nil {
		return rpc.ReplyErr(rpc.StatusInternal), nil
	}
	if sp != nil {
		sp.Bytes = int64(len(body))
	}
	return rpc.ReplyOK(), body
}

// handleSalvage serves CmdSalvage: the self-healing control surface. The
// health selector is read-only and admitted like stats/traces (read
// right); the scrub and recover selectors change server behaviour and
// demand the admin right.
func (s *Service) handleSalvage(tc *trace.Ctx, parent *trace.Span, req rpc.Header) (rpc.Header, []byte) {
	sp := tc.Begin(parent, trace.LayerEngine, trace.OpSalvage)
	defer tc.End(sp)
	fail := func(err error) (rpc.Header, []byte) {
		if sp != nil {
			sp.Status = 1
		}
		return rpc.ReplyErr(StatusOf(err)), nil
	}
	switch req.Arg {
	case SalvageHealth:
		if err := s.engine.AuthorizeRead(req.Cap); err != nil {
			return fail(err)
		}
		report := HealthReport{HealthReport: s.engine.Health()}
		if s.scrubber != nil {
			st := s.scrubber.Status()
			report.Scrub = &st
		}
		body, err := json.Marshal(report)
		if err != nil {
			return rpc.ReplyErr(rpc.StatusInternal), nil
		}
		if sp != nil {
			sp.Bytes = int64(len(body))
		}
		return rpc.ReplyOK(), body

	case SalvageScrub:
		if err := s.engine.AuthorizeAdmin(req.Cap); err != nil {
			return fail(err)
		}
		if s.scrubber == nil {
			if sp != nil {
				sp.Status = 1
			}
			return rpc.ReplyErr(rpc.StatusBadCommand), nil // scrubbing not enabled
		}
		s.scrubber.TriggerPass()
		return rpc.ReplyOK(), nil

	case SalvageRecover:
		if err := s.engine.AuthorizeAdmin(req.Cap); err != nil {
			return fail(err)
		}
		if sp != nil {
			sp.Replica = int8(int(req.Arg2))
		}
		if err := s.engine.StartRecover(int(req.Arg2)); err != nil {
			return fail(err)
		}
		return rpc.ReplyOK(), nil

	default:
		if sp != nil {
			sp.Status = 1
		}
		return rpc.ReplyErr(rpc.StatusBadRequest), nil
	}
}
