package bulletsvc

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"bulletfs/internal/bullet"
	"bulletfs/internal/cache"
	"bulletfs/internal/capability"
	"bulletfs/internal/disk"
	"bulletfs/internal/rpc"
	"bulletfs/internal/stats"
)

func newService(t *testing.T) (*Service, *bullet.Server) {
	t.Helper()
	devs := make([]disk.Device, 2)
	for i := range devs {
		mem, err := disk.NewMem(512, 4096)
		if err != nil {
			t.Fatalf("NewMem: %v", err)
		}
		devs[i] = mem
	}
	set, err := disk.NewReplicaSet(devs...)
	if err != nil {
		t.Fatalf("NewReplicaSet: %v", err)
	}
	if err := bullet.Format(set, 200); err != nil {
		t.Fatalf("Format: %v", err)
	}
	eng, err := bullet.New(set, bullet.Options{CacheBytes: 1 << 20})
	if err != nil {
		t.Fatalf("bullet.New: %v", err)
	}
	t.Cleanup(eng.Sync)
	return New(eng), eng
}

func TestHandleCreateSizeReadDelete(t *testing.T) {
	svc, _ := newService(t)
	data := []byte("protocol-level round trip")

	rep, _ := svc.Handle(rpc.Header{Command: CmdCreate, Arg: 2}, data)
	if rep.Status != rpc.StatusOK {
		t.Fatalf("create status = %v", rep.Status)
	}
	c := rep.Cap

	rep, _ = svc.Handle(rpc.Header{Command: CmdSize, Cap: c}, nil)
	if rep.Status != rpc.StatusOK || rep.Arg != uint64(len(data)) {
		t.Fatalf("size reply = %+v", rep)
	}

	rep, body := svc.Handle(rpc.Header{Command: CmdRead, Cap: c}, nil)
	if rep.Status != rpc.StatusOK || !bytes.Equal(body, data) {
		t.Fatalf("read reply = %+v %q", rep, body)
	}

	rep, _ = svc.Handle(rpc.Header{Command: CmdDelete, Cap: c}, nil)
	if rep.Status != rpc.StatusOK {
		t.Fatalf("delete status = %v", rep.Status)
	}
	rep, _ = svc.Handle(rpc.Header{Command: CmdRead, Cap: c}, nil)
	if rep.Status != rpc.StatusNoSuchObject {
		t.Fatalf("read-after-delete status = %v", rep.Status)
	}
}

func TestHandleStatusMapping(t *testing.T) {
	svc, eng := newService(t)
	rep, _ := svc.Handle(rpc.Header{Command: CmdCreate, Arg: 99}, []byte("x"))
	if rep.Status != rpc.StatusBadPFactor {
		t.Fatalf("bad p-factor status = %v", rep.Status)
	}

	rep, _ = svc.Handle(rpc.Header{Command: CmdCreate, Arg: 2}, []byte("x"))
	c := rep.Cap
	forged := c
	forged.Check[0] ^= 1
	rep, _ = svc.Handle(rpc.Header{Command: CmdRead, Cap: forged}, nil)
	if rep.Status != rpc.StatusBadCheck {
		t.Fatalf("forged status = %v", rep.Status)
	}

	readOnly, err := capability.Restrict(c, capability.RightRead)
	if err != nil {
		t.Fatalf("Restrict: %v", err)
	}
	rep, _ = svc.Handle(rpc.Header{Command: CmdDelete, Cap: readOnly}, nil)
	if rep.Status != rpc.StatusBadRights {
		t.Fatalf("rights status = %v", rep.Status)
	}

	rep, _ = svc.Handle(rpc.Header{Command: CmdReadRange, Cap: c, Arg: ^uint64(0)}, nil)
	if rep.Status != rpc.StatusBadOffset {
		t.Fatalf("offset status = %v", rep.Status)
	}

	rep, _ = svc.Handle(rpc.Header{Command: 9999}, nil)
	if rep.Status != rpc.StatusBadCommand {
		t.Fatalf("bad command status = %v", rep.Status)
	}

	big := make([]byte, eng.MaxFileSize()+1)
	rep, _ = svc.Handle(rpc.Header{Command: CmdCreate, Arg: 1}, big)
	if rep.Status != rpc.StatusTooLarge {
		t.Fatalf("too-large status = %v", rep.Status)
	}
}

func TestHandleModifyAppendReadRange(t *testing.T) {
	svc, _ := newService(t)
	rep, _ := svc.Handle(rpc.Header{Command: CmdCreate, Arg: 2}, []byte("0123456789"))
	c := rep.Cap

	rep, _ = svc.Handle(rpc.Header{
		Command: CmdModify, Cap: c, Arg: 2, Arg2: PackModifyArg2(-1, 2),
	}, []byte("XY"))
	if rep.Status != rpc.StatusOK {
		t.Fatalf("modify status = %v", rep.Status)
	}
	rep2, body := svc.Handle(rpc.Header{Command: CmdRead, Cap: rep.Cap}, nil)
	if rep2.Status != rpc.StatusOK || string(body) != "01XY456789" {
		t.Fatalf("modified = %q", body)
	}

	rep, _ = svc.Handle(rpc.Header{Command: CmdAppend, Cap: c, Arg: 2}, []byte("ab"))
	if rep.Status != rpc.StatusOK {
		t.Fatalf("append status = %v", rep.Status)
	}
	_, body = svc.Handle(rpc.Header{Command: CmdRead, Cap: rep.Cap}, nil)
	if string(body) != "0123456789ab" {
		t.Fatalf("appended = %q", body)
	}

	rep, body = svc.Handle(rpc.Header{Command: CmdReadRange, Cap: c, Arg: 3, Arg2: 4}, nil)
	if rep.Status != rpc.StatusOK || string(body) != "3456" {
		t.Fatalf("range = %v %q", rep.Status, body)
	}
}

func TestHandleStatAndAdmin(t *testing.T) {
	svc, _ := newService(t)
	svc.Handle(rpc.Header{Command: CmdCreate, Arg: 0}, []byte("x")) //nolint:errcheck

	rep, _ := svc.Handle(rpc.Header{Command: CmdSync}, nil)
	if rep.Status != rpc.StatusOK {
		t.Fatalf("sync status = %v", rep.Status)
	}
	rep, body := svc.Handle(rpc.Header{Command: CmdStat}, nil)
	if rep.Status != rpc.StatusOK {
		t.Fatalf("stat status = %v", rep.Status)
	}
	var st ServerStats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("stat payload: %v", err)
	}
	if st.Engine.Creates != 1 || st.LiveFiles != 1 {
		t.Fatalf("stats = %+v", st)
	}
	rep, _ = svc.Handle(rpc.Header{Command: CmdCompactDisk}, nil)
	if rep.Status != rpc.StatusOK {
		t.Fatalf("compact-disk status = %v", rep.Status)
	}
	rep, _ = svc.Handle(rpc.Header{Command: CmdCompactCache}, nil)
	if rep.Status != rpc.StatusOK {
		t.Fatalf("compact-cache status = %v", rep.Status)
	}
}

func TestStatusErrorRoundTrip(t *testing.T) {
	// Every engine error must map to a status that maps back to a
	// matching error value.
	cases := []error{
		bullet.ErrNoSuchFile,
		bullet.ErrTooLarge,
		bullet.ErrDiskFull,
		bullet.ErrBadPFactor,
		bullet.ErrBadOffset,
		capability.ErrBadCheck,
		capability.ErrBadRights,
		cache.ErrTooLarge,
	}
	for _, in := range cases {
		st := StatusOf(in)
		if st == rpc.StatusOK || st == rpc.StatusInternal {
			t.Errorf("StatusOf(%v) = %v", in, st)
			continue
		}
		out := ErrorOf(st)
		// cache.ErrTooLarge intentionally maps onto bullet.ErrTooLarge.
		if errors.Is(in, cache.ErrTooLarge) {
			if !errors.Is(out, bullet.ErrTooLarge) {
				t.Errorf("ErrorOf(StatusOf(cache.ErrTooLarge)) = %v", out)
			}
			continue
		}
		if !errors.Is(out, in) {
			t.Errorf("round trip %v -> %v -> %v", in, st, out)
		}
	}
	if StatusOf(nil) != rpc.StatusOK || ErrorOf(rpc.StatusOK) != nil {
		t.Error("nil/OK round trip broken")
	}
	if StatusOf(errors.New("mystery")) != rpc.StatusInternal {
		t.Error("unknown error not mapped to internal")
	}
	if ErrorOf(rpc.StatusInternal) == nil {
		t.Error("internal status mapped to nil error")
	}
}

func TestPackModifyArg2Bounds(t *testing.T) {
	// The pack format must survive the extremes the protocol allows.
	for _, size := range []int64{-1, 0, 1, 1 << 31, 1<<47 - 2} {
		for _, pf := range []int{0, 1, 2, 7, 65535} {
			gs, gp := UnpackModifyArg2(PackModifyArg2(size, pf))
			if gs != size || gp != pf {
				t.Fatalf("pack(%d,%d) round-tripped to (%d,%d)", size, pf, gs, gp)
			}
		}
	}
}

func TestRegisterRoutesByEnginePort(t *testing.T) {
	svc, eng := newService(t)
	mux := rpc.NewMux(0)
	svc.Register(mux)
	tr := rpc.NewLocal(mux)
	rep, _, err := tr.Trans(eng.Port(), rpc.Header{Command: CmdStat}, nil)
	if err != nil || rep.Status != rpc.StatusOK {
		t.Fatalf("Trans = %v, %v", rep.Status, err)
	}
	if _, _, err := tr.Trans(capability.PortFromString("other"), rpc.Header{}, nil); !errors.Is(err, rpc.ErrNoServer) {
		t.Fatalf("unknown port err = %v", err)
	}
}

func TestHandleStats(t *testing.T) {
	svc, _ := newService(t)
	rep, _ := svc.Handle(rpc.Header{Command: CmdCreate, Arg: 1}, []byte("stats me"))
	if rep.Status != rpc.StatusOK {
		t.Fatalf("create status = %v", rep.Status)
	}
	c := rep.Cap

	rep, body := svc.Handle(rpc.Header{Command: CmdStats, Cap: c}, nil)
	if rep.Status != rpc.StatusOK {
		t.Fatalf("stats status = %v", rep.Status)
	}
	var snap stats.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("stats payload: %v", err)
	}
	if snap.Counters["bullet.creates"] != 1 {
		t.Errorf("bullet.creates = %d, want 1", snap.Counters["bullet.creates"])
	}

	// Without the read right, the query is refused.
	delOnly, err := capability.Restrict(c, capability.RightDelete)
	if err != nil {
		t.Fatalf("Restrict: %v", err)
	}
	rep, _ = svc.Handle(rpc.Header{Command: CmdStats, Cap: delOnly}, nil)
	if rep.Status != rpc.StatusBadRights {
		t.Errorf("stats with delete-only cap: status = %v, want StatusBadRights", rep.Status)
	}
}

func TestCommandName(t *testing.T) {
	known := map[uint32]string{
		CmdCreate: "create", CmdSize: "size", CmdRead: "read",
		CmdDelete: "delete", CmdModify: "modify", CmdAppend: "append",
		CmdReadRange: "readrange", CmdStat: "stat", CmdSync: "sync",
		CmdCompactDisk: "compactdisk", CmdCompactCache: "compactcache",
		CmdStats: "stats",
	}
	seen := make(map[string]bool)
	for cmd, want := range known {
		got := CommandName(cmd)
		if got != want {
			t.Errorf("CommandName(%d) = %q, want %q", cmd, got, want)
		}
		if seen[got] {
			t.Errorf("duplicate command name %q", got)
		}
		seen[got] = true
	}
	if got := CommandName(999); got != "" {
		t.Errorf("CommandName(999) = %q, want empty", got)
	}
}
