package bulletsvc

import (
	"encoding/json"
	"testing"
	"time"

	"bulletfs/internal/bullet"
	"bulletfs/internal/capability"
	"bulletfs/internal/disk"
	"bulletfs/internal/rpc"
	"bulletfs/internal/scrub"
)

// TestHandleSalvage exercises the wire surface of cmd 14: health is
// admitted with the read right, scrub and recover demand the admin
// right, and malformed selectors or replica indices are rejected before
// they reach the engine.
func TestHandleSalvage(t *testing.T) {
	svc, eng := newService(t)

	rep, _ := svc.Handle(rpc.Header{Command: CmdCreate, Arg: 2}, []byte("salvage me"))
	if rep.Status != rpc.StatusOK {
		t.Fatalf("create status = %v", rep.Status)
	}
	owner := rep.Cap
	readOnly, err := capability.Restrict(owner, capability.RightRead)
	if err != nil {
		t.Fatalf("Restrict: %v", err)
	}

	// Health: read right suffices, reply is a JSON HealthReport.
	rep, body := svc.Handle(rpc.Header{Command: CmdSalvage, Cap: readOnly, Arg: SalvageHealth}, nil)
	if rep.Status != rpc.StatusOK {
		t.Fatalf("health status = %v", rep.Status)
	}
	var h HealthReport
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatalf("health report does not decode: %v", err)
	}
	if h.LayoutVersion != 2 || h.LiveFiles != 1 || len(h.Replicas) != 2 {
		t.Fatalf("health report = %+v", h)
	}
	if h.Scrub != nil {
		t.Fatalf("scrub status reported with no scrubber attached: %+v", h.Scrub)
	}

	// Scrub and recover are admin operations: a read-only capability is
	// turned away with StatusBadRights.
	for _, sel := range []uint64{SalvageScrub, SalvageRecover} {
		rep, _ = svc.Handle(rpc.Header{Command: CmdSalvage, Cap: readOnly, Arg: sel}, nil)
		if rep.Status != rpc.StatusBadRights {
			t.Fatalf("selector %d with read-only cap: status = %v, want bad rights", sel, rep.Status)
		}
	}

	// Scrub with the owner capability but no scrubber attached: the
	// command is not available.
	rep, _ = svc.Handle(rpc.Header{Command: CmdSalvage, Cap: owner, Arg: SalvageScrub}, nil)
	if rep.Status != rpc.StatusBadCommand {
		t.Fatalf("scrub without scrubber: status = %v, want bad command", rep.Status)
	}

	// Attach a scrubber: the same request now triggers a pass, and the
	// health report grows a scrub section.
	sc := scrub.New(eng, scrub.Config{Interval: 0, BytesPerSec: scrub.DefaultBytesPerSec})
	sc.Start()
	defer sc.Stop()
	svc.AttachScrubber(sc)
	rep, _ = svc.Handle(rpc.Header{Command: CmdSalvage, Cap: owner, Arg: SalvageScrub}, nil)
	if rep.Status != rpc.StatusOK {
		t.Fatalf("scrub status = %v", rep.Status)
	}
	deadline := time.Now().Add(5 * time.Second)
	for sc.Status().Passes == 0 {
		if time.Now().After(deadline) {
			t.Fatal("triggered scrub pass never completed")
		}
		time.Sleep(time.Millisecond)
	}
	rep, body = svc.Handle(rpc.Header{Command: CmdSalvage, Cap: owner, Arg: SalvageHealth}, nil)
	if rep.Status != rpc.StatusOK {
		t.Fatalf("health status = %v", rep.Status)
	}
	h = HealthReport{}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatalf("health report does not decode: %v", err)
	}
	if h.Scrub == nil || h.Scrub.Passes == 0 || h.Scrub.FilesChecked == 0 {
		t.Fatalf("scrub status after pass = %+v", h.Scrub)
	}

	// Recover with an out-of-range replica index is a bad request, not a
	// crash or an engine-side panic.
	rep, _ = svc.Handle(rpc.Header{Command: CmdSalvage, Cap: owner, Arg: SalvageRecover, Arg2: 7}, nil)
	if rep.Status != rpc.StatusBadRequest {
		t.Fatalf("recover replica 7: status = %v, want bad request", rep.Status)
	}

	// Unknown selector.
	rep, _ = svc.Handle(rpc.Header{Command: CmdSalvage, Cap: owner, Arg: 9}, nil)
	if rep.Status != rpc.StatusBadRequest {
		t.Fatalf("selector 9: status = %v, want bad request", rep.Status)
	}
}

// TestHandleSalvageRecoverBusy proves the StatusBusy mapping: a second
// recover while one is running is refused on the wire, and a recover of
// a dead replica completes and is visible in the health report.
func TestHandleSalvageRecoverBusy(t *testing.T) {
	devs := make([]disk.Device, 2)
	faulty := make([]*disk.FaultyDisk, 2)
	for i := range devs {
		mem, err := disk.NewMem(512, 4096)
		if err != nil {
			t.Fatalf("NewMem: %v", err)
		}
		faulty[i] = disk.NewFaulty(mem)
		devs[i] = faulty[i]
	}
	set, err := disk.NewReplicaSet(devs...)
	if err != nil {
		t.Fatalf("NewReplicaSet: %v", err)
	}
	if err := bullet.Format(set, 200); err != nil {
		t.Fatalf("Format: %v", err)
	}
	eng, err := bullet.New(set, bullet.Options{CacheBytes: 1 << 20})
	if err != nil {
		t.Fatalf("bullet.New: %v", err)
	}
	t.Cleanup(func() { _ = eng.Close() })
	svc := New(eng)

	rep, _ := svc.Handle(rpc.Header{Command: CmdCreate, Arg: 2}, []byte("recover me"))
	if rep.Status != rpc.StatusOK {
		t.Fatalf("create status = %v", rep.Status)
	}
	owner := rep.Cap

	// Kill replica 1, then make the set notice through a failed write.
	faulty[1].Fault()
	rep, _ = svc.Handle(rpc.Header{Command: CmdCreate, Arg: 2}, []byte("discover the dead disk"))
	if rep.Status != rpc.StatusOK {
		t.Fatalf("create with one dead replica: status = %v", rep.Status)
	}
	if set.Alive(1) {
		t.Fatal("replica 1 still marked alive after faulted write")
	}
	faulty[1].Heal()

	rep, _ = svc.Handle(rpc.Header{Command: CmdSalvage, Cap: owner, Arg: SalvageRecover, Arg2: 1}, nil)
	if rep.Status != rpc.StatusOK {
		t.Fatalf("recover status = %v", rep.Status)
	}
	// A concurrent second recover answers busy. The first recovery is
	// tiny, so it may already have finished — accept OK in that case but
	// demand that at least the wire mapping never reports anything else.
	rep, _ = svc.Handle(rpc.Header{Command: CmdSalvage, Cap: owner, Arg: SalvageRecover, Arg2: 1}, nil)
	if rep.Status != rpc.StatusOK && rep.Status != rpc.StatusBusy {
		t.Fatalf("second recover status = %v, want ok or busy", rep.Status)
	}

	var h HealthReport
	deadline := time.Now().Add(5 * time.Second)
	for {
		rep, body := svc.Handle(rpc.Header{Command: CmdSalvage, Cap: owner, Arg: SalvageHealth}, nil)
		if rep.Status != rpc.StatusOK {
			t.Fatalf("health status = %v", rep.Status)
		}
		h = HealthReport{}
		if err := json.Unmarshal(body, &h); err != nil {
			t.Fatalf("health report does not decode: %v", err)
		}
		if h.Recovering == -1 && h.LastRecover != nil && !h.LastRecover.Running {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("recovery never finished: %+v", h)
		}
		time.Sleep(time.Millisecond)
	}
	if h.LastRecover.Replica != 1 || h.LastRecover.Error != "" {
		t.Fatalf("last recover = %+v", h.LastRecover)
	}
	if h.Recoveries == 0 {
		t.Fatalf("recoveries counter = %d, want > 0", h.Recoveries)
	}
}
