package bulletsvc

import (
	"encoding/json"

	"bulletfs/internal/rpc"
	"bulletfs/internal/trace"
)

// This file serves CmdWatch: a capability-checked streaming subscription
// to the telemetry collector. Each collector tick becomes one AMRS reply
// frame whose payload is the tick's stats.Update as JSON and whose
// header Arg is the update's sequence number, so a client can detect
// drops (a gap in seq means its subscription buffer overflowed). The
// stream runs until the client disconnects, the collector shuts down, or
// the requested update count (request Arg; 0 = unbounded) is served.
//
// Like STATS and TRACE, any valid capability with the read right admits
// the watcher: telemetry is read-only observability.

// handleWatch streams collector updates over emit.
func (s *Service) handleWatch(tc *trace.Ctx, parent *trace.Span, req rpc.Header, emit rpc.Emitter) {
	if s.coll == nil {
		_ = emit(rpc.ReplyErr(rpc.StatusBadCommand), rpc.Plain(nil), true)
		return
	}
	sp := tc.Begin(parent, trace.LayerEngine, trace.OpWatch)
	if err := s.engine.AuthorizeRead(req.Cap); err != nil {
		if sp != nil {
			sp.Status = 1
		}
		tc.End(sp)
		_ = emit(rpc.ReplyErr(StatusOf(err)), rpc.Plain(nil), true)
		return
	}
	// The span covers subscription setup only; the stream itself can
	// outlive any reasonable trace (and the connection's span arena is
	// reused per request).
	tc.End(sp)

	max := req.Arg
	sub := s.coll.Subscribe()
	defer sub.Close()

	sent := uint64(0)
	for u := range sub.C {
		body, err := json.Marshal(u)
		if err != nil {
			_ = emit(rpc.ReplyErr(rpc.StatusInternal), rpc.Plain(nil), true)
			return
		}
		sent++
		last := max != 0 && sent >= max
		h := rpc.Header{Status: rpc.StatusOK, Arg: u.Seq, Arg2: uint64(s.coll.Interval())}
		if emit(h, rpc.Plain(body), last) != nil {
			return // client gone; Subscribe's defer tears down the feed
		}
		if last {
			return
		}
	}
	// Collector shut down mid-stream: end the stream cleanly with an
	// empty final frame so the client sees an orderly close, not a hang.
	_ = emit(rpc.Header{Status: rpc.StatusOK}, rpc.Plain(nil), true)
}
