package bulletsvc

import (
	"bulletfs/internal/rpc"
	"bulletfs/internal/trace"
)

// This file is the zero-copy/streaming half of the service: the stream
// dispatch entry point (HandleStream), the borrowed-payload READ and
// READ_RANGE replies, and the chunked READSTREAM command. The classic
// single-frame commands keep their HandleTraced bodies; HandleStream
// wraps them in one final frame.

// Chunk-size bounds for CmdReadStream. The request's Arg2 is a hint;
// zero picks the default and out-of-range hints are clamped.
const (
	streamChunkDefault = 256 << 10
	streamChunkMin     = 4 << 10
	streamChunkMax     = 4 << 20
)

// HandleStream processes one Bullet transaction, emitting one or more
// reply frames. READ and READ_RANGE replies borrow the engine's pinned
// cache bytes (the RPC layer writes them to the socket and releases the
// pin afterwards — zero payload copies); READSTREAM serves a file as a
// sequence of ranged frames off one pin; every other command is the
// classic HandleTraced body emitted as a single frame.
func (s *Service) HandleStream(tc *trace.Ctx, parent *trace.Span, req rpc.Header, payload []byte, emit rpc.Emitter) {
	switch req.Command {
	case CmdRead, CmdReadRange:
		if s.shedExpired(tc, parent, req.Command) {
			_ = emit(rpc.ReplyErr(rpc.StatusDeadlineExceeded), rpc.Plain(nil), true)
			return
		}
		release, ok := s.admit(tc, parent, req.Command)
		if !ok {
			_ = emit(rpc.ReplyErr(rpc.StatusBusy), rpc.Plain(nil), true)
			return
		}
		defer release()
		offset, n := int64(0), int64(-1)
		if req.Command == CmdReadRange {
			// Arg2 all-ones (n = -1) means "to the end of the file" — the
			// wire form of the engine's open-ended range.
			offset, n = int64(req.Arg), int64(req.Arg2)
		}
		lease, err := s.engine.ReadRangeViewTraced(tc, parent, req.Cap, offset, n)
		if err != nil {
			_ = emit(rpc.ReplyErr(StatusOf(err)), rpc.Plain(nil), true)
			return
		}
		// Ownership transfer: the RPC layer releases the lease once the
		// frame's bytes have been written.
		_ = emit(rpc.ReplyOK(), rpc.Owned(lease.Bytes(), lease), true)

	case CmdReadStream:
		s.handleReadStream(tc, parent, req, emit)

	case CmdWatch:
		s.handleWatch(tc, parent, req, emit)

	default:
		h, p := s.HandleTraced(tc, parent, req, payload)
		_ = emit(h, rpc.Plain(p), true)
	}
}

// handleReadStream serves CmdReadStream: the file from Arg onward as a
// sequence of chunked frames, all cut from ONE pinned lease — the pin is
// held across the whole stream and released after the final frame's
// write. Each frame's header carries the chunk's file offset (Arg) and
// the file's total size (Arg2), so clients can preallocate and verify.
func (s *Service) handleReadStream(tc *trace.Ctx, parent *trace.Span, req rpc.Header, emit rpc.Emitter) {
	if s.shedExpired(tc, parent, req.Command) {
		_ = emit(rpc.ReplyErr(rpc.StatusDeadlineExceeded), rpc.Plain(nil), true)
		return
	}
	release, ok := s.admit(tc, parent, req.Command)
	if !ok {
		_ = emit(rpc.ReplyErr(rpc.StatusBusy), rpc.Plain(nil), true)
		return
	}
	defer release()
	chunk := int64(req.Arg2)
	if chunk == 0 {
		chunk = streamChunkDefault
	} else if chunk < streamChunkMin {
		chunk = streamChunkMin
	} else if chunk > streamChunkMax {
		chunk = streamChunkMax
	}
	offset := int64(req.Arg)
	lease, err := s.engine.ReadRangeViewTraced(tc, parent, req.Cap, offset, -1)
	if err != nil {
		_ = emit(rpc.ReplyErr(StatusOf(err)), rpc.Plain(nil), true)
		return
	}
	defer lease.Release()
	data := lease.Bytes()
	size := lease.Size()
	if len(data) == 0 {
		_ = emit(rpc.Header{Status: rpc.StatusOK, Arg: uint64(offset), Arg2: uint64(size)}, rpc.Plain(nil), true)
		return
	}
	for off := int64(0); off < int64(len(data)); off += chunk {
		end := off + chunk
		if end > int64(len(data)) {
			end = int64(len(data))
		}
		h := rpc.Header{Status: rpc.StatusOK, Arg: uint64(offset + off), Arg2: uint64(size)}
		if emit(h, rpc.Plain(data[off:end]), end == int64(len(data))) != nil {
			return // client gone; stop emitting
		}
	}
}

// admit claims an admission slot for cmd (when a limiter is attached and
// cmd is admission-controlled). ok false means the request must be shed
// with StatusBusy; otherwise release returns the slot and must be called
// when the request is done.
func (s *Service) admit(tc *trace.Ctx, parent *trace.Span, cmd uint32) (release func(), ok bool) {
	if s.adm == nil || !admissionControlled(cmd) {
		return func() {}, true
	}
	sp := tc.Begin(parent, trace.LayerRPC, trace.OpAdmit)
	ok = s.adm.TryEnter()
	if !ok && sp != nil {
		sp.Status = int32(rpc.StatusBusy)
	}
	tc.End(sp)
	if !ok {
		return nil, false
	}
	if s.adm.manualRelease {
		return func() {}, true
	}
	return s.adm.Release, true
}
