package bulletsvc

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bulletfs/internal/promtext"
	"bulletfs/internal/stats"
	"bulletfs/internal/trace"
)

func newDebugWorld(t *testing.T) (*stats.Registry, *stats.Collector, *http.ServeMux) {
	t.Helper()
	reg := stats.NewRegistry()
	reg.Counter("rpc.read.requests").Add(7)
	reg.Gauge("cache.bytes").Set(512)
	h := reg.HistogramExemplars("rpc.read.latency_ns", nil, 0)
	h.ObserveTraced(int64(3*time.Millisecond), 0xbeef)
	coll := stats.NewCollector(reg, time.Hour, 8)
	t.Cleanup(coll.Close)
	rec := trace.NewRecorder()
	t.Cleanup(rec.Close)
	mux := NewDebugMux(DebugMuxConfig{Registry: reg, Recorder: rec, Collector: coll, Pprof: true})
	return reg, coll, mux
}

func get(t *testing.T, mux *http.ServeMux, path string) *httptest.ResponseRecorder {
	t.Helper()
	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
	return rr
}

func TestDebugStatsHandler(t *testing.T) {
	_, _, mux := newDebugWorld(t)
	rr := get(t, mux, "/debug/stats")
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q, want application/json", ct)
	}
	var snap stats.Snapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
		t.Fatalf("body not a snapshot: %v", err)
	}
	if snap.Counters["rpc.read.requests"] != 7 {
		t.Fatalf("counters = %v", snap.Counters)
	}
	// Satellite: the snapshot JSON must surface p999 and the exemplars.
	hs, ok := snap.Histograms["rpc.read.latency_ns"]
	if !ok {
		t.Fatal("latency histogram missing")
	}
	if hs.P999 == 0 {
		t.Fatal("p999 missing from histogram JSON")
	}
	if !strings.Contains(rr.Body.String(), `"p999"`) {
		t.Fatal(`literal "p999" key missing from /debug/stats body`)
	}
	if len(hs.Exemplars) == 0 || hs.Exemplars[0].TraceID != "000000000000beef" {
		t.Fatalf("exemplars = %+v", hs.Exemplars)
	}
}

func TestDebugTracesHandler(t *testing.T) {
	_, _, mux := newDebugWorld(t)
	for _, path := range []string{"/debug/traces", "/debug/traces?slow=1"} {
		rr := get(t, mux, path)
		if rr.Code != http.StatusOK {
			t.Fatalf("%s: status = %d", path, rr.Code)
		}
		if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
			t.Fatalf("%s: Content-Type = %q, want application/json", path, ct)
		}
		if !json.Valid(rr.Body.Bytes()) {
			t.Fatalf("%s: body not JSON", path)
		}
	}
}

func TestMetricsHandler(t *testing.T) {
	_, _, mux := newDebugWorld(t)
	rr := get(t, mux, "/metrics")
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); ct != stats.OpenMetricsContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, stats.OpenMetricsContentType)
	}
	st, err := promtext.Validate(strings.NewReader(rr.Body.String()))
	if err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, rr.Body.String())
	}
	if st.Histograms == 0 || st.Exemplars == 0 {
		t.Fatalf("stats = %+v, want a histogram with an exemplar", st)
	}
	if !strings.Contains(rr.Body.String(), "bullet_rpc_read_requests_total 7") {
		t.Fatal("counter missing from exposition")
	}
}

func TestDebugTelemetryHandler(t *testing.T) {
	reg, coll, mux := newDebugWorld(t)
	base := time.Unix(1_700_000_000, 0)
	coll.Tick(base)
	reg.Counter("rpc.read.requests").Add(3)
	coll.Tick(base.Add(time.Second))
	coll.Tick(base.Add(2 * time.Second))

	rr := get(t, mux, "/debug/telemetry?n=1")
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var updates []stats.Update
	if err := json.Unmarshal(rr.Body.Bytes(), &updates); err != nil {
		t.Fatalf("body: %v", err)
	}
	if len(updates) != 1 || updates[0].Seq != 2 {
		t.Fatalf("updates = %+v, want the single newest (seq 2)", updates)
	}

	if rr := get(t, mux, "/debug/telemetry?n=bogus"); rr.Code != http.StatusBadRequest {
		t.Fatalf("bad n: status = %d, want 400", rr.Code)
	}
}

func TestDebugPprofMounted(t *testing.T) {
	_, _, mux := newDebugWorld(t)
	rr := get(t, mux, "/debug/pprof/cmdline")
	if rr.Code != http.StatusOK {
		t.Fatalf("pprof cmdline status = %d", rr.Code)
	}
}
