package bullet

import (
	"bytes"
	"testing"
	"time"

	"bulletfs/internal/capability"
	"bulletfs/internal/disk"
	"bulletfs/internal/layout"
	"bulletfs/internal/stats"
	"bulletfs/internal/trace"
)

// healWorld is like world but keeps handles to the underlying MemDisks so
// tests can corrupt stored bytes (not just injected reads) and compare
// replica contents after repair.
type healWorld struct {
	srv    *Server
	set    *disk.ReplicaSet
	faulty []*disk.FaultyDisk
	mems   []*disk.MemDisk
	reg    *stats.Registry
	port   capability.Port // reused across reboots so capabilities survive
}

func newHealWorld(t *testing.T, replicas int, wrap func(i int, dev disk.Device) disk.Device) *healWorld {
	t.Helper()
	w := &healWorld{reg: stats.NewRegistry()}
	devs := make([]disk.Device, replicas)
	for i := range devs {
		mem, err := disk.NewMem(512, 4096)
		if err != nil {
			t.Fatalf("NewMem: %v", err)
		}
		w.mems = append(w.mems, mem)
		var dev disk.Device = mem
		if wrap != nil {
			dev = wrap(i, dev)
		}
		f := disk.NewFaulty(dev)
		w.faulty = append(w.faulty, f)
		devs[i] = f
	}
	set, err := disk.NewReplicaSet(devs...)
	if err != nil {
		t.Fatalf("NewReplicaSet: %v", err)
	}
	w.set = set
	if err := Format(set, 200); err != nil {
		t.Fatalf("Format: %v", err)
	}
	port, err := capability.NewPort()
	if err != nil {
		t.Fatalf("NewPort: %v", err)
	}
	w.port = port
	w.srv = w.mustBoot(t)
	return w
}

// mustBoot starts a fresh engine over the world's replica set (a fresh
// engine has a cold cache, so the next read is a disk fault-in).
func (w *healWorld) mustBoot(t *testing.T) *Server {
	t.Helper()
	w.reg = stats.NewRegistry()
	srv, err := New(w.set, Options{Port: w.port, CacheBytes: 1 << 20, Metrics: w.reg})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	w.srv = srv
	return srv
}

// extentOf returns the byte range [off, off+n) of obj's padded extent.
func (w *healWorld) extentOf(t *testing.T, obj uint32) (off, n int64) {
	t.Helper()
	desc, err := layout.ReadDescriptor(w.mems[0])
	if err != nil {
		t.Fatalf("ReadDescriptor: %v", err)
	}
	ino, err := w.srv.table.Get(obj)
	if err != nil {
		t.Fatalf("Get(%d): %v", obj, err)
	}
	return desc.DataOffset(int64(ino.FirstBlock)), ino.Blocks(desc.BlockSize) * int64(desc.BlockSize)
}

// corruptStored flips one byte of obj's extent as stored on replica i,
// bypassing the fault-injection wrapper — persistent silent corruption.
func (w *healWorld) corruptStored(t *testing.T, i int, obj uint32) {
	t.Helper()
	off, n := w.extentOf(t, obj)
	buf := make([]byte, n)
	if err := w.mems[i].ReadAt(buf, off); err != nil {
		t.Fatalf("reading extent on replica %d: %v", i, err)
	}
	buf[len(buf)/3] ^= 0xFF
	if err := w.mems[i].WriteAt(buf, off); err != nil {
		t.Fatalf("corrupting extent on replica %d: %v", i, err)
	}
}

// extentEqual reports whether obj's extent is byte-identical on replicas
// a and b.
func (w *healWorld) extentEqual(t *testing.T, a, b int, obj uint32) bool {
	t.Helper()
	off, n := w.extentOf(t, obj)
	ba, bb := make([]byte, n), make([]byte, n)
	if err := w.mems[a].ReadAt(ba, off); err != nil {
		t.Fatalf("reading replica %d: %v", a, err)
	}
	if err := w.mems[b].ReadAt(bb, off); err != nil {
		t.Fatalf("reading replica %d: %v", b, err)
	}
	return bytes.Equal(ba, bb)
}

// TestVerifiedFaultInHealsCorruptReplica: silently corrupt the main
// replica's stored copy of a file, fault it in through a cold cache, and
// require the read to return the true bytes (served from a sibling), count
// the checksum error, and rewrite the main's extent in place.
func TestVerifiedFaultInHealsCorruptReplica(t *testing.T) {
	w := newHealWorld(t, 3, nil)
	data := bytes.Repeat([]byte("checksums catch what replication spreads "), 50)
	c := mustCreate(t, w.srv, data, 3)
	w.srv.Sync()

	srv2 := w.mustBoot(t) // cold cache: next read is a disk fault-in
	w.corruptStored(t, 0, c.Object)

	got, err := srv2.Read(c)
	if err != nil {
		t.Fatalf("Read over corrupt main: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("Read returned corrupt data")
	}
	if n := w.set.ChecksumErrors(0); n == 0 {
		t.Fatalf("checksum error on replica 0 not counted")
	}
	if n := w.set.Repairs(0); n == 0 {
		t.Fatalf("self-heal repair on replica 0 not counted")
	}
	if !w.set.Alive(0) {
		t.Fatalf("one checksum error quarantined replica 0 (budget should absorb it)")
	}
	if !w.extentEqual(t, 0, 1, c.Object) {
		t.Fatalf("replica 0's extent not rewritten in place")
	}
}

// TestChecksumBackfillAndPersist: wipe the on-disk checksum area (as if
// the entries were never flushed), reboot, and require the first fault-in
// to recompute the checksum lazily; after a Sync the entry must be
// persistent — proven by a third boot that detects corruption with it.
func TestChecksumBackfillAndPersist(t *testing.T) {
	w := newHealWorld(t, 3, nil)
	data := bytes.Repeat([]byte("v1-era file without a recorded checksum "), 40)
	c := mustCreate(t, w.srv, data, 3)
	w.srv.Sync()

	// Wipe the checksum area on every replica.
	desc, err := layout.ReadDescriptor(w.mems[0])
	if err != nil {
		t.Fatalf("ReadDescriptor: %v", err)
	}
	zero := make([]byte, desc.BlockSize)
	for _, mem := range w.mems {
		for b := int64(0); b < desc.SumBlocks(); b++ {
			if err := mem.WriteAt(zero, (desc.SumStart()+b)*int64(desc.BlockSize)); err != nil {
				t.Fatalf("wiping checksum area: %v", err)
			}
		}
	}

	srv2 := w.mustBoot(t)
	if got, err := srv2.Read(c); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("Read after checksum wipe: %v", err)
	}
	if n := w.reg.Counter("bullet.checksum_backfills").Load(); n != 1 {
		t.Fatalf("checksum_backfills = %d, want 1", n)
	}
	if w.srv.table.DirtySums() == 0 {
		t.Fatalf("backfilled checksum not marked dirty")
	}
	srv2.Sync()
	if w.srv.table.DirtySums() != 0 {
		t.Fatalf("Sync left dirty checksum blocks")
	}

	// Third boot: the persisted entry must make corruption detectable.
	srv3 := w.mustBoot(t)
	w.corruptStored(t, 0, c.Object)
	before := w.set.ChecksumErrors(0)
	if got, err := srv3.Read(c); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("Read over corrupt main after backfill persisted: %v", err)
	}
	if w.set.ChecksumErrors(0) == before {
		t.Fatalf("persisted checksum did not catch corruption on the third boot")
	}
	if n := w.reg.Counter("bullet.checksum_backfills").Load(); n != 0 {
		t.Fatalf("third boot re-backfilled (%d): entry was not persisted", n)
	}
}

// TestScrubObjectRepairsDivergence: scrub detects a silently corrupted
// replica copy and rewrites it from a verifying sibling.
func TestScrubObjectRepairsDivergence(t *testing.T) {
	w := newHealWorld(t, 3, nil)
	data := bytes.Repeat([]byte("scrub me "), 300)
	c := mustCreate(t, w.srv, data, 3)
	w.srv.Sync()
	w.corruptStored(t, 1, c.Object)

	res := w.srv.ScrubObject(c.Object)
	if res.Repaired != 1 || res.Unrepairable || res.Skipped {
		t.Fatalf("ScrubObject = %+v, want exactly one repair", res)
	}
	if !w.extentEqual(t, 0, 1, c.Object) || !w.extentEqual(t, 0, 2, c.Object) {
		t.Fatalf("replicas still diverge after scrub")
	}
	if res := w.srv.ScrubObject(c.Object); res.Repaired != 0 {
		t.Fatalf("second scrub repaired %d extents on a clean file", res.Repaired)
	}
	if res := w.srv.ScrubObject(9999); !res.Skipped {
		t.Fatalf("scrubbing a free inode not skipped: %+v", res)
	}
}

// TestScrubObjectUnrepairable: when every replica's copy fails the
// checksum, scrub must say so rather than crown a corrupt copy.
func TestScrubObjectUnrepairable(t *testing.T) {
	w := newHealWorld(t, 3, nil)
	c := mustCreate(t, w.srv, bytes.Repeat([]byte("doomed "), 200), 3)
	w.srv.Sync()
	for i := range w.mems {
		w.corruptStored(t, i, c.Object)
	}
	res := w.srv.ScrubObject(c.Object)
	if !res.Unrepairable {
		t.Fatalf("ScrubObject = %+v, want Unrepairable", res)
	}
	if n := w.reg.Counter("bullet.scrub_unrepairable").Load(); n != 1 {
		t.Fatalf("scrub_unrepairable = %d, want 1", n)
	}
}

// TestScrubBackfillsByMajority: a file with no recorded checksum gets one
// from the majority copy, and the odd replica out is rewritten.
func TestScrubBackfillsByMajority(t *testing.T) {
	w := newHealWorld(t, 3, nil)
	data := bytes.Repeat([]byte("majority rules "), 100)
	c := mustCreate(t, w.srv, data, 3)
	w.srv.Sync()

	// Wipe the checksum area and reboot so the table has no sum.
	desc, _ := layout.ReadDescriptor(w.mems[0])
	zero := make([]byte, desc.BlockSize)
	for _, mem := range w.mems {
		for b := int64(0); b < desc.SumBlocks(); b++ {
			if err := mem.WriteAt(zero, (desc.SumStart()+b)*int64(desc.BlockSize)); err != nil {
				t.Fatalf("wiping checksum area: %v", err)
			}
		}
	}
	srv2 := w.mustBoot(t)
	w.corruptStored(t, 2, c.Object)

	res := srv2.ScrubObject(c.Object)
	if !res.Backfilled || res.Repaired != 1 || res.Unrepairable {
		t.Fatalf("ScrubObject = %+v, want backfill + one repair", res)
	}
	if got, err := srv2.Read(c); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("Read after majority backfill: %v", err)
	}
}

// TestV1UpgradeOnBoot: a pre-checksum (v1) disk loads, upgrades in place,
// and serves checksummed files from then on.
func TestV1UpgradeOnBoot(t *testing.T) {
	devs := make([]disk.Device, 3)
	mems := make([]*disk.MemDisk, 3)
	for i := range devs {
		mem, err := disk.NewMem(512, 4096)
		if err != nil {
			t.Fatalf("NewMem: %v", err)
		}
		mems[i] = mem
		devs[i] = mem
	}
	set, err := disk.NewReplicaSet(devs...)
	if err != nil {
		t.Fatalf("NewReplicaSet: %v", err)
	}
	if err := layout.Format(set, layout.FormatConfig{Inodes: 200, Version: 1}); err != nil {
		t.Fatalf("Format v1: %v", err)
	}
	reg := stats.NewRegistry()
	srv, err := New(set, Options{CacheBytes: 1 << 20, Metrics: reg})
	if err != nil {
		t.Fatalf("New over v1 disk: %v", err)
	}
	if n := reg.Counter("bullet.table_upgrades").Load(); n != 1 {
		t.Fatalf("table_upgrades = %d, want 1", n)
	}
	if v := srv.Health().LayoutVersion; v != 2 {
		t.Fatalf("layout version after boot = %d, want 2", v)
	}
	data := []byte("born on v1, checksummed on v2")
	c, err := srv.Create(data, 3)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	srv.Sync()

	// Second boot: already v2, no second upgrade, checksum loads.
	reg2 := stats.NewRegistry()
	srv2, err := New(set, Options{Port: srv.Port(), CacheBytes: 1 << 20, Metrics: reg2})
	if err != nil {
		t.Fatalf("New after upgrade: %v", err)
	}
	if n := reg2.Counter("bullet.table_upgrades").Load(); n != 0 {
		t.Fatalf("second boot upgraded again (%d times)", n)
	}
	if got, err := srv2.Read(c); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("Read after upgrade reboot: %v", err)
	}
	if ino, err := srv2.table.Get(c.Object); err != nil || !ino.HasSum {
		t.Fatalf("checksum not persisted across the upgrade (ino=%+v err=%v)", ino, err)
	}
}

// slowWrites delays every write — it makes a recovery copy take long
// enough that reads and creates demonstrably complete inside the window.
type slowWrites struct {
	disk.Device
	delay time.Duration
}

func (s slowWrites) WriteAt(p []byte, off int64) error {
	time.Sleep(s.delay)
	return s.Device.WriteAt(p, off)
}

// TestEngineRecoverNonBlocking is the acceptance test for online
// recovery: while a ≥64 MB replica is being caught up, a read and a
// create must both complete (asserted via the trace recorder), and the
// replica must converge byte-for-byte afterwards.
func TestEngineRecoverNonBlocking(t *testing.T) {
	const blockSize, blocks = 4096, 16384 // 64 MiB per replica
	devs := make([]disk.Device, 3)
	mems := make([]*disk.MemDisk, 3)
	faulty := make([]*disk.FaultyDisk, 3)
	for i := range devs {
		mem, err := disk.NewMem(blockSize, blocks)
		if err != nil {
			t.Fatalf("NewMem: %v", err)
		}
		mems[i] = mem
		var dev disk.Device = mem
		if i == 2 {
			dev = slowWrites{Device: mem, delay: 500 * time.Microsecond}
		}
		faulty[i] = disk.NewFaulty(dev)
		devs[i] = faulty[i]
	}
	set, err := disk.NewReplicaSet(devs...)
	if err != nil {
		t.Fatalf("NewReplicaSet: %v", err)
	}
	if err := Format(set, 500); err != nil {
		t.Fatalf("Format: %v", err)
	}
	srv, err := New(set, Options{CacheBytes: 4 << 20})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	pre := mustCreate(t, srv, bytes.Repeat([]byte("survivor "), 500), 2)
	srv.Sync()

	// Kill replica 2 (a write discovers the fault), then revive the
	// hardware and start the online catch-up.
	faulty[2].Fault()
	mustCreate(t, srv, []byte("write that discovers the dead disk"), 2)
	srv.Sync()
	if set.Alive(2) {
		t.Fatalf("replica 2 still alive after faulted write-through")
	}
	faulty[2].Heal()
	if err := srv.StartRecover(2); err != nil {
		t.Fatalf("StartRecover: %v", err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for set.Recovering() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("recovery never started")
		}
		time.Sleep(time.Millisecond)
	}

	// Mid-recovery: a read and a create must complete while the copy is
	// still running, recorded as completed spans in the trace recorder.
	rec := trace.NewRecorder()
	defer rec.Close()
	tc := rec.AcquireCtx()
	tc.Reset(rec.NextLocalID())
	got, err := srv.ReadTraced(tc, nil, pre)
	tc.Finish()
	if err != nil || !bytes.Equal(got, bytes.Repeat([]byte("survivor "), 500)) {
		t.Fatalf("read during recovery: %v", err)
	}
	tc.Reset(rec.NextLocalID())
	mid, err := srv.CreateTraced(tc, nil, bytes.Repeat([]byte("mid-recovery create "), 100), 2)
	tc.Finish()
	rec.ReleaseCtx(tc)
	if err != nil {
		t.Fatalf("create during recovery: %v", err)
	}
	if set.Recovering() != 2 {
		t.Fatalf("recovery finished before the concurrent ops ran; widen the window")
	}
	traces := rec.Recent()
	if len(traces) != 2 {
		t.Fatalf("trace recorder holds %d traces, want 2", len(traces))
	}
	for _, tr := range traces {
		root := tr.Root()
		if root == nil || root.Dur == trace.DurPending || root.Status != 0 {
			t.Fatalf("mid-recovery op span incomplete or failed: %+v", root)
		}
	}

	for set.Recovering() != -1 {
		if time.Now().After(deadline) {
			t.Fatalf("recovery never finished")
		}
		time.Sleep(time.Millisecond)
	}
	if set.Recoveries() != 1 {
		t.Fatalf("Recoveries = %d, want 1", set.Recoveries())
	}
	if !set.Alive(2) {
		t.Fatalf("replica 2 not alive after recovery")
	}
	h := srv.Health()
	if h.LastRecover == nil || h.LastRecover.Running || h.LastRecover.Error != "" {
		t.Fatalf("health LastRecover = %+v, want finished cleanly", h.LastRecover)
	}

	// The mid-recovery create must be durable on the recovered replica.
	srv.Sync()
	if got, err := srv.Read(mid); err != nil || !bytes.Equal(got, bytes.Repeat([]byte("mid-recovery create "), 100)) {
		t.Fatalf("mid-recovery file unreadable after recovery: %v", err)
	}
	if !bytes.Equal(mems[0].Snapshot(), mems[2].Snapshot()) {
		t.Fatalf("replica 2 diverges from replica 0 after recovery")
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestHealthAndAuthorizeAdmin covers the SALVAGE admission rule: reading
// health needs no admin right, triggering recovery does.
func TestHealthAndAuthorizeAdmin(t *testing.T) {
	w := newHealWorld(t, 3, nil)
	owner := mustCreate(t, w.srv, []byte("admin object"), 1)
	if err := w.srv.AuthorizeAdmin(owner); err != nil {
		t.Fatalf("owner capability refused admin: %v", err)
	}
	readOnly, err := capability.Restrict(owner, capability.RightRead)
	if err != nil {
		t.Fatalf("Restrict: %v", err)
	}
	if err := w.srv.AuthorizeAdmin(readOnly); err == nil {
		t.Fatalf("read-only capability granted admin")
	}
	h := w.srv.Health()
	if h.LiveFiles != 1 || len(h.Replicas) != 3 || h.Recovering != -1 || h.LayoutVersion != 2 {
		t.Fatalf("health report = %+v", h)
	}
	if err := w.srv.StartRecover(7); err == nil {
		t.Fatalf("StartRecover out of range accepted")
	}
}
