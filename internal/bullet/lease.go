package bullet

import (
	"fmt"

	"bulletfs/internal/cache"
	"bulletfs/internal/capability"
	"bulletfs/internal/trace"
)

// errBadSpan reports a malformed or out-of-bounds read span. size < 0
// means the span was rejected before the file was consulted.
func errBadSpan(offset, size int64) error {
	if size < 0 {
		return fmt.Errorf("range start %d: %w", offset, ErrBadOffset)
	}
	return fmt.Errorf("offset %d past size %d: %w", offset, size, ErrBadOffset)
}

// This file is the zero-copy read API. The classic Read/ReadRange copy
// the requested span out of the pinned cache view before returning, so
// every cached read costs one full memory pass between the cache arena
// and the reply buffer. ReadView/ReadRangeView instead return a ReadLease
// that either keeps the cache pin alive (hit) or owns a fresh fault
// buffer (miss); the caller — in practice the RPC reply path — writes the
// bytes to the socket and only then releases the lease, so a cached read
// travels cache arena -> kernel with zero payload copies.

// ReadLease is a borrowed window onto a file's bytes. While unreleased,
// a pinned lease holds a reference on the cache slot backing Bytes, which
// blocks eviction and compaction of that slot (the same contract as
// cache.View). Callers must Release every lease on every path; the
// bulletlint pinleak pass enforces this, and handing the lease to the RPC
// reply path (rpc.Owned) transfers the obligation there.
type ReadLease struct {
	data []byte
	size int64
	view *cache.View // nil when the lease owns data outright
}

// Bytes is the leased span. It is valid only until Release.
func (l *ReadLease) Bytes() []byte { return l.data }

// Size is the total size of the file the span was cut from.
func (l *ReadLease) Size() int64 { return l.size }

// Pinned reports whether the lease holds a cache pin (true for cache
// hits) rather than owning its bytes outright (fault-in misses).
func (l *ReadLease) Pinned() bool { return l.view != nil }

// Release returns the lease's backing resources. Idempotent; Bytes is
// invalid afterwards.
func (l *ReadLease) Release() {
	if l.view != nil {
		l.view.Release()
		l.view = nil
	}
	l.data = nil
}

// cut bounds [offset, offset+n) against data (n < 0 means to the end)
// and returns the subslice plus the full size — no copy, unlike span.
func cut(data []byte, offset, n int64) ([]byte, int64, error) {
	size := int64(len(data))
	if offset > size {
		return nil, size, errBadSpan(offset, size)
	}
	end := size
	if n >= 0 && offset+n < size {
		end = offset + n
	}
	return data[offset:end], size, nil
}

// fetchLease is the lease-returning core of the read path: verify the
// capability, pin the cached bytes (hit) or run the singleflight disk
// fault (miss), and cut the requested span. The caller owns the returned
// lease and must Release it on every path.
func (s *Server) fetchLease(tc *trace.Ctx, parent *trace.Span, c capability.Capability, want capability.Rights, offset, n int64) (*ReadLease, error) {
	s.mu.RLock()
	vsp := tc.Begin(parent, trace.LayerEngine, trace.OpVerify)
	inode, ino, err := s.verify(c, want)
	if vsp != nil {
		vsp.Inode = inode
		if err != nil {
			vsp.Status = 1
		}
	}
	tc.End(vsp)
	if err != nil {
		s.mu.RUnlock()
		return nil, err
	}
	if ino.CacheIndex != 0 {
		if view, verr := s.cache.GetViewTraced(tc, parent, ino.CacheIndex, inode); verr == nil {
			s.mu.RUnlock()
			// The span is cut from the pinned bytes without copying; the
			// pin rides in the lease and keeps the slot put until Release.
			data, size, err := cut(view.Bytes(), offset, n)
			if err != nil {
				view.Release()
				return nil, err
			}
			l := &ReadLease{data: data, size: size}
			l.view = view
			s.m.leasePinned.Inc()
			return l, nil
		}
		// Stale index (eviction raced the lookup): clear it, unless a
		// concurrent fault already published a fresh binding.
		_, _ = s.table.SetCacheIndexIf(inode, ino.CacheIndex, 0)
	} else {
		s.cache.TraceMiss(tc, parent, inode)
	}
	s.mu.RUnlock()

	fsp := tc.Begin(parent, trace.LayerEngine, trace.OpFault)
	data, shared, waited, err := s.faultIn(tc, fsp, inode, ino.Random)
	if fsp != nil {
		fsp.Inode = inode
		fsp.Bytes = int64(len(data))
		fsp.Merged = waited
		if err != nil {
			fsp.Status = 1
		}
	}
	tc.End(fsp)
	if err != nil {
		return nil, err
	}
	out, size, err := cut(data, offset, n)
	if err != nil {
		return nil, err
	}
	if shared {
		// A shared fault result is read by every merged waiter: the lease
		// must own its bytes.
		out = append([]byte(nil), out...)
		s.m.readCopies.Inc()
	}
	s.m.leaseOwned.Inc()
	return &ReadLease{data: out, size: size}, nil
}

// ReadView is Read without the payload copy: the returned lease pins the
// cached file (or owns a fresh fault buffer) and must be released by the
// caller on every path.
func (s *Server) ReadView(c capability.Capability) (*ReadLease, error) {
	return s.ReadViewTraced(nil, nil, c)
}

// ReadViewTraced is ReadView with span emission.
func (s *Server) ReadViewTraced(tc *trace.Ctx, parent *trace.Span, c capability.Capability) (*ReadLease, error) {
	return s.ReadRangeViewTraced(tc, parent, c, 0, -1)
}

// ReadRangeView is ReadRange without the payload copy; n < 0 means "to
// the end of the file". The returned lease must be released by the caller
// on every path.
func (s *Server) ReadRangeView(c capability.Capability, offset, n int64) (*ReadLease, error) {
	return s.ReadRangeViewTraced(nil, nil, c, offset, n)
}

// ReadRangeViewTraced is ReadRangeView with span emission.
func (s *Server) ReadRangeViewTraced(tc *trace.Ctx, parent *trace.Span, c capability.Capability, offset, n int64) (*ReadLease, error) {
	if offset < 0 {
		return nil, errBadSpan(offset, -1)
	}
	op := trace.OpRead
	if offset != 0 || n >= 0 {
		op = trace.OpReadRange
	}
	sp := tc.Begin(parent, trace.LayerEngine, op)
	l, err := s.fetchLease(tc, sp, c, RightRead, offset, n)
	if sp != nil {
		sp.Inode = c.Object
		if l != nil {
			sp.Bytes = int64(len(l.data))
		}
		if err != nil {
			sp.Status = 1
		}
	}
	tc.End(sp)
	if err != nil {
		return nil, err
	}
	s.m.reads.Inc()
	s.m.bytesOut.Add(int64(len(l.data)))
	return l, nil
}
