package bullet

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"bulletfs/internal/capability"
)

// TestStressMixedOperationsWithCompaction hammers the engine from many
// goroutines — creates, reads, deletes, modifies — while another
// goroutine repeatedly runs the disk and cache compactors. Every read
// must return exactly what was created; the test fails on any corruption,
// lost file, or deadlock (via the test timeout).
func TestStressMixedOperationsWithCompaction(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test in -short mode")
	}
	w := newWorld(t, 2, Options{CacheBytes: 256 << 10}) // small cache: force evictions

	const workers = 6
	const opsPerWorker = 120
	var wg sync.WaitGroup     // workers only
	var compWg sync.WaitGroup // the compactor
	errc := make(chan error, workers+1)

	stop := make(chan struct{})
	compWg.Add(1)
	go func() { // the 3 a.m. compactor, running at 3 p.m.
		defer compWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := w.srv.CompactDisk(); err != nil {
				errc <- err
				return
			}
			w.srv.CompactCache()
		}
	}()

	for id := 0; id < workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			type file struct {
				cap  capability.Capability
				data []byte
			}
			var mine []file
			for op := 0; op < opsPerWorker; op++ {
				switch {
				case len(mine) < 4 || op%5 == 0:
					size := (id*131+op*977)%6000 + 1
					data := bytes.Repeat([]byte{byte(id*16 + op%16 + 1)}, size)
					c, err := w.srv.Create(data, (op % 3)) // all p-factors
					if errors.Is(err, ErrDiskFull) {
						continue
					}
					if err != nil {
						errc <- err
						return
					}
					mine = append(mine, file{cap: c, data: data})
				case op%5 == 1 && len(mine) > 0:
					f := mine[op%len(mine)]
					nc, err := w.srv.Append(f.cap, []byte{0xEE}, 1)
					if errors.Is(err, ErrDiskFull) {
						continue
					}
					if err != nil {
						errc <- err
						return
					}
					mine = append(mine, file{cap: nc, data: append(append([]byte{}, f.data...), 0xEE)})
				case op%5 == 2 && len(mine) > 2:
					i := op % len(mine)
					if err := w.srv.Delete(mine[i].cap); err != nil {
						errc <- err
						return
					}
					mine = append(mine[:i], mine[i+1:]...)
				default:
					f := mine[op%len(mine)]
					got, err := w.srv.Read(f.cap)
					if err != nil {
						errc <- err
						return
					}
					if !bytes.Equal(got, f.data) {
						errc <- errors.New("read returned corrupted data under stress")
						return
					}
				}
			}
			// Final verification of everything this worker still owns.
			for _, f := range mine {
				got, err := w.srv.Read(f.cap)
				if err != nil || !bytes.Equal(got, f.data) {
					errc <- errors.New("file corrupted at end of stress run")
					return
				}
			}
		}(id)
	}

	// Wait for the workers, then stop the compactor.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case err := <-errc:
		close(stop)
		t.Fatal(err)
	case <-done:
	}
	close(stop)
	compWg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	// The engine survives a restart after all that.
	w.srv.Sync()
	srv2, err := New(w.set, Options{Port: w.srv.Port(), CacheBytes: 1 << 20})
	if err != nil {
		t.Fatalf("restart after stress: %v", err)
	}
	if srv2.Live() < 0 {
		t.Fatal("unreachable")
	}
	t.Logf("stress done: %d live files, stats %+v", srv2.Live(), w.srv.Stats())
}
