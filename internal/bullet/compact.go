package bullet

import (
	"fmt"

	"bulletfs/internal/alloc"
	"bulletfs/internal/disk"
	"bulletfs/internal/layout"
)

// CompactDisk slides every file toward the start of the data area, merging
// all holes into one — the paper's "compaction every morning at 3 am when
// the system is lightly loaded" (§3). It is also invoked automatically by
// Create when first fit fails although enough total space is free.
//
// For each move the file is read whole from the main disk, written to its
// new extent on every replica, and only then is the inode updated and
// written through — so a crash mid-compaction leaves either the old or the
// new inode, each pointing at intact data (the source extent is not reused
// until the free list is rebuilt at the end).
//
// The metadata lock is held exclusively throughout: reads with a cache hit
// are unaffected (their copy-out happens outside the lock), while cache
// misses queue until the extents stop moving.
func (s *Server) CompactDisk() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactDiskLocked()
}

func (s *Server) compactDiskLocked() error {
	// Compaction rearranges extents; in-flight write-throughs must not
	// land on moved ground. Wait out creates still between metadata
	// publish and write registration (commits), then the registered
	// writes themselves.
	s.commits.Wait()
	s.flushCommits()
	s.replicas.Drain()
	bs := int64(s.desc.BlockSize)
	var used []alloc.Used
	s.table.ForEachUsed(func(n uint32, ino layout.Inode) {
		used = append(used, alloc.Used{
			Extent: alloc.Extent{Start: int64(ino.FirstBlock), Count: ino.Blocks(s.desc.BlockSize)},
			Tag:    n,
		})
	})
	moves := alloc.Plan(used)
	for _, m := range moves {
		n := m.Tag.(uint32)
		if _, err := s.table.Get(n); err != nil {
			return fmt.Errorf("bullet: compaction lost inode %d: %w", n, err)
		}
		buf := make([]byte, m.Count*bs)
		if err := s.replicas.ReadAt(buf, s.desc.DataOffset(m.From)); err != nil {
			return fmt.Errorf("bullet: compaction read inode %d: %w", n, err)
		}
		// Data first, to all replicas, synchronously.
		werr := s.replicas.Apply(s.replicas.N(), func(_ int, dev disk.Device) error {
			return dev.WriteAt(buf, s.desc.DataOffset(m.To))
		})
		if werr != nil {
			return fmt.Errorf("bullet: compaction write inode %d: %w", n, werr)
		}
		// Then the metadata: point the inode at the new extent.
		if err := s.retarget(n, uint32(m.To)); err != nil {
			return err
		}
		s.m.compactionBytes.Add(m.Count * bs)
	}

	var after []alloc.Extent
	s.table.ForEachUsed(func(_ uint32, ino layout.Inode) {
		after = append(after, alloc.Extent{Start: int64(ino.FirstBlock), Count: ino.Blocks(s.desc.BlockSize)})
	})
	if err := s.dalloc.Reset(after); err != nil {
		return fmt.Errorf("bullet: rebuilding free list after compaction: %w", err)
	}
	s.m.compactions.Inc()
	return nil
}

// retarget rewrites inode n to point at a new first block, preserving the
// random number, size and cache index, and writes it through to all disks.
func (s *Server) retarget(n, firstBlock uint32) error {
	if err := s.table.Retarget(n, firstBlock); err != nil {
		return fmt.Errorf("bullet: retargeting inode %d: %w", n, err)
	}
	err := s.replicas.Apply(s.replicas.N(), func(_ int, dev disk.Device) error {
		return s.table.WriteInode(dev, n)
	})
	if err != nil {
		return fmt.Errorf("bullet: persisting retarget of inode %d: %w", n, err)
	}
	return nil
}

// CompactCache defragments the RAM cache arena (paper §3: "the
// fragmentation in memory can be alleviated by compacting part or all of
// the RAM cache from time to time"). The exclusive metadata lock keeps new
// reads from pinning views mid-compaction; if views are already pinned
// (readers mid-copy-out), the cache skips the compaction rather than
// sliding bytes out from under them. A non-nil error is cache.ErrCorrupt.
func (s *Server) CompactCache() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cache.Compact()
}
