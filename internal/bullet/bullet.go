// Package bullet implements the Bullet file server engine — the paper's
// primary contribution. Files are immutable, stored contiguously on disk,
// cached contiguously in RAM, and transferred whole. The only operations
// are create, size, read and delete (paper §2.2), plus the "create a new
// file from an existing file" extension of §5.
//
// The engine composes the substrates: the inode table and disk layout
// (internal/layout), the first-fit contiguous allocator (internal/alloc),
// the rnode RAM cache (internal/cache), N-way disk replication
// (internal/disk.ReplicaSet) and capability protection
// (internal/capability). Network transport lives one layer up, in
// internal/bulletsvc.
package bullet

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"bulletfs/internal/alloc"
	"bulletfs/internal/cache"
	"bulletfs/internal/capability"
	"bulletfs/internal/disk"
	"bulletfs/internal/layout"
	"bulletfs/internal/stats"
)

// Engine-level errors.
var (
	// ErrNoSuchFile means the capability's object number does not name a
	// live file.
	ErrNoSuchFile = errors.New("bullet: no such file")
	// ErrTooLarge means a file does not fit in the server's cache memory;
	// the Bullet model requires whole files in RAM (paper §2).
	ErrTooLarge = errors.New("bullet: file too large for server memory")
	// ErrDiskFull means no contiguous extent can hold the file, even after
	// compaction.
	ErrDiskFull = errors.New("bullet: disk full")
	// ErrBadPFactor means the paranoia factor exceeds the number of disks
	// ("this requires the file server to have at least N disks", §2.2).
	ErrBadPFactor = errors.New("bullet: p-factor exceeds replica count")
	// ErrBadOffset means a modify/read range is malformed.
	ErrBadOffset = errors.New("bullet: bad offset or length")
)

// Rights understood by the Bullet server.
const (
	// RightRead covers BULLET.READ and BULLET.SIZE.
	RightRead = capability.RightRead
	// RightDelete covers BULLET.DELETE.
	RightDelete = capability.RightDelete
	// RightModify covers deriving new files from this one (§5 extension).
	RightModify = capability.RightModify
)

// Options configures a Server.
type Options struct {
	// Port is the server's capability port. Zero means draw a random one.
	Port capability.Port
	// CacheBytes is the RAM cache arena size. The paper's server used all
	// memory left after the inode table; default 8 MiB.
	CacheBytes int64
	// MaxCachedFiles bounds the rnode table; default 1024.
	MaxCachedFiles int
	// Metrics is the stats registry the engine threads through every
	// layer (cache, disks, its own counters). Nil means a private
	// registry; pass a shared one to co-locate RPC metrics.
	Metrics *stats.Registry
}

func (o *Options) fill() error {
	if o.CacheBytes == 0 {
		o.CacheBytes = 8 << 20
	}
	if o.MaxCachedFiles == 0 {
		o.MaxCachedFiles = 1024
	}
	if (o.Port == capability.Port{}) {
		p, err := capability.NewPort()
		if err != nil {
			return err
		}
		o.Port = p
	}
	return nil
}

// Stats counts engine activity. It is a legacy snapshot view synthesized
// from the metrics registry; the registry itself (Metrics) additionally
// carries latency histograms and per-layer gauges.
type Stats struct {
	Creates      int64
	Reads        int64
	Deletes      int64
	Modifies     int64
	CacheHits    int64
	CacheMisses  int64
	CapCacheHits int64 // capability validations served from the §2.1 cache
	BytesIn      int64
	BytesOut     int64
	Compactions  int64
}

// engineMetrics holds the engine's handles into the stats registry. The
// handles are immutable after New; the counters themselves are atomic.
type engineMetrics struct {
	creates         *stats.Counter
	reads           *stats.Counter
	deletes         *stats.Counter
	modifies        *stats.Counter
	capCacheHits    *stats.Counter
	bytesIn         *stats.Counter
	bytesOut        *stats.Counter
	compactions     *stats.Counter
	compactionBytes *stats.Counter
	commit          []*stats.Histogram // commit-to-disk latency, indexed by p-factor
}

func newEngineMetrics(reg *stats.Registry, replicas int) engineMetrics {
	m := engineMetrics{
		creates:         reg.Counter("bullet.creates"),
		reads:           reg.Counter("bullet.reads"),
		deletes:         reg.Counter("bullet.deletes"),
		modifies:        reg.Counter("bullet.modifies"),
		capCacheHits:    reg.Counter("bullet.capcache_hits"),
		bytesIn:         reg.Counter("bullet.bytes_in"),
		bytesOut:        reg.Counter("bullet.bytes_out"),
		compactions:     reg.Counter("bullet.disk_compactions"),
		compactionBytes: reg.Counter("bullet.compaction_bytes_moved"),
	}
	for k := 0; k <= replicas; k++ {
		m.commit = append(m.commit,
			reg.Histogram(fmt.Sprintf("bullet.commit_ns.p%d", k), stats.DefaultLatencyBounds))
	}
	return m
}

// Server is one Bullet file server instance over a replica set.
type Server struct {
	port     capability.Port
	replicas *disk.ReplicaSet
	desc     layout.Descriptor

	mu     sync.Mutex // serializes metadata operations, like the paper's single-threaded server
	table  *layout.Table
	dalloc *alloc.Allocator // data-area blocks
	cache  *cache.Cache

	metrics *stats.Registry // immutable after New
	m       engineMetrics   // immutable handles; counters are atomic

	// capCache remembers successfully verified capabilities so repeat
	// requests skip the check-field computation — "Capabilities can be
	// cached to avoid decryption for each access" (paper §2.1). Entries
	// for an object are dropped when it is deleted; the whole cache is
	// bounded and evicted wholesale when full (verification is cheap, the
	// cache is an optimization, simplicity wins).
	capCache map[capability.Capability]capability.Rights
}

// maxCapCache bounds the verified-capability cache.
const maxCapCache = 4096

// Format writes a fresh Bullet filesystem onto every replica of the set.
func Format(replicas *disk.ReplicaSet, inodes int) error {
	return layout.Format(replicas, layout.FormatConfig{Inodes: inodes})
}

// New starts an engine over the (already formatted) replica set: it reads
// the complete inode table into RAM, scans it for consistency, rebuilds the
// disk free list from the inodes, and readies the cache (paper §3 startup
// sequence). Inodes the scan had to zero are persisted back to disk.
func New(replicas *disk.ReplicaSet, opts Options) (*Server, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	replicas.Drain() // settle any in-flight writes from a previous engine
	table, report, err := layout.Load(replicas)
	if err != nil {
		return nil, fmt.Errorf("bullet: loading inode table: %w", err)
	}
	for _, p := range report.Problems {
		if err := table.WriteInode(replicas, p.Inode); err != nil {
			return nil, fmt.Errorf("bullet: persisting scan fix for inode %d: %w", p.Inode, err)
		}
	}
	desc := table.Desc()

	var used []alloc.Extent
	table.ForEachUsed(func(_ uint32, ino layout.Inode) {
		used = append(used, alloc.Extent{
			Start: int64(ino.FirstBlock),
			Count: ino.Blocks(desc.BlockSize),
		})
	})
	dalloc, err := alloc.NewFromUsed(desc.DataSize, used)
	if err != nil {
		return nil, fmt.Errorf("bullet: rebuilding free list: %w", err)
	}
	fileCache, err := cache.New(opts.CacheBytes, opts.MaxCachedFiles)
	if err != nil {
		return nil, fmt.Errorf("bullet: building cache: %w", err)
	}
	reg := opts.Metrics
	if reg == nil {
		reg = stats.NewRegistry()
	}
	s := &Server{
		port:     opts.Port,
		replicas: replicas,
		desc:     desc,
		table:    table,
		dalloc:   dalloc,
		cache:    fileCache,
		metrics:  reg,
		m:        newEngineMetrics(reg, replicas.N()),
		capCache: make(map[capability.Capability]capability.Rights),
	}
	fileCache.AttachMetrics(reg)
	replicas.AttachMetrics(reg)
	reg.GaugeFunc("bullet.live_files", func() int64 { return int64(s.Live()) })
	reg.GaugeFunc("bullet.data_blocks_used", func() int64 { return s.DiskStats().Used })
	reg.GaugeFunc("bullet.data_blocks_free", func() int64 { return s.DiskStats().Free })
	reg.GaugeFunc("bullet.data_largest_free", func() int64 { return s.DiskStats().LargestFree })
	return s, nil
}

// Port returns the server's capability port.
func (s *Server) Port() capability.Port { return s.port }

// MaxFileSize returns the largest file this server accepts: it must fit in
// the RAM cache whole.
func (s *Server) MaxFileSize() int64 { return s.cache.Stats().TotalBytes }

// verify resolves a capability to its inode, checking the check field and
// the required rights. Successful check-field validations are remembered
// (paper §2.1), so only the rights test runs on repeats. Must be called
// with s.mu held.
func (s *Server) verify(c capability.Capability, want capability.Rights) (uint32, layout.Inode, error) {
	if c.Port != s.port {
		return 0, layout.Inode{}, fmt.Errorf("capability for another server: %w", ErrNoSuchFile)
	}
	ino, err := s.table.Get(c.Object)
	if err != nil {
		return 0, layout.Inode{}, fmt.Errorf("object %d: %w", c.Object, ErrNoSuchFile)
	}
	if rights, ok := s.capCache[c]; ok {
		s.m.capCacheHits.Inc()
		if !rights.Has(want) {
			return 0, layout.Inode{}, fmt.Errorf("need rights %08b, have %08b: %w",
				want, rights, capability.ErrBadRights)
		}
		return c.Object, ino, nil
	}
	rights, err := capability.Verify(c, ino.Random)
	if err != nil {
		return 0, layout.Inode{}, err
	}
	if len(s.capCache) >= maxCapCache {
		clear(s.capCache)
	}
	s.capCache[c] = rights
	if !rights.Has(want) {
		return 0, layout.Inode{}, fmt.Errorf("need rights %08b, have %08b: %w",
			want, rights, capability.ErrBadRights)
	}
	return c.Object, ino, nil
}

// forgetCapsLocked drops cached capability validations for an object; its
// random number dies with it, and the inode slot will be reused.
func (s *Server) forgetCapsLocked(obj uint32) {
	for c := range s.capCache {
		if c.Object == obj {
			delete(s.capCache, c)
		}
	}
}

// blocksFor returns the data-area blocks needed for a file of n bytes.
func (s *Server) blocksFor(n int64) int64 {
	return (layout.Inode{Size: uint32(clampUint32(n))}).Blocks(s.desc.BlockSize)
}

func clampUint32(n int64) uint32 {
	if n < 0 {
		return 0
	}
	if n > 0xFFFFFFFF {
		return 0xFFFFFFFF
	}
	return uint32(n)
}

// Create implements BULLET.CREATE (paper §2.2): it stores data as a new
// immutable file and returns its owner capability. The paranoia factor
// selects when the call returns relative to the write-through replication:
// 0 returns once the file is in the RAM cache, k >= 1 returns after k disks
// hold both the file and its inode. The write-through to every disk always
// happens (paper §3); P-FACTOR only moves the reply.
func (s *Server) Create(data []byte, pfactor int) (capability.Capability, error) {
	if pfactor < 0 || pfactor > s.replicas.N() {
		return capability.Capability{}, fmt.Errorf("p-factor %d with %d disks: %w",
			pfactor, s.replicas.N(), ErrBadPFactor)
	}
	size := int64(len(data))
	if size > s.MaxFileSize() {
		return capability.Capability{}, fmt.Errorf("%d bytes: %w", size, ErrTooLarge)
	}

	s.mu.Lock()
	defer s.mu.Unlock()

	// A contiguous extent in the data area, first fit; if fragmentation
	// defeats us but the space exists, compact the disk and retry (the
	// paper runs this nightly; we run it on demand).
	blocks := s.blocksFor(size)
	start, err := s.dalloc.Alloc(blocks)
	if errors.Is(err, alloc.ErrNoSpace) {
		if st := s.dalloc.Stats(); st.Free >= blocks {
			if cerr := s.compactDiskLocked(); cerr != nil {
				return capability.Capability{}, cerr
			}
			start, err = s.dalloc.Alloc(blocks)
		}
	}
	if err != nil {
		return capability.Capability{}, fmt.Errorf("%d blocks: %w", blocks, ErrDiskFull)
	}

	random, err := capability.NewRandom()
	if err != nil {
		s.dalloc.Free(start, blocks) //nolint:errcheck // rollback of our own alloc
		return capability.Capability{}, err
	}
	inode, err := s.table.Allocate(random, uint32(start), uint32(size))
	if err != nil {
		s.dalloc.Free(start, blocks) //nolint:errcheck // rollback of our own alloc
		return capability.Capability{}, err
	}

	// Into the RAM cache first: BULLET.CREATE with P-FACTOR 0 returns
	// "immediately after the file has been copied to the file server's RAM
	// cache, but before it has been stored on disk".
	idx, evicted, err := s.cache.Insert(inode, data)
	if err != nil {
		_ = s.table.Free(inode)
		s.dalloc.Free(start, blocks) //nolint:errcheck // rollback
		return capability.Capability{}, err
	}
	s.clearEvictedLocked(evicted)
	if err := s.table.SetCacheIndex(inode, idx); err != nil {
		return capability.Capability{}, err
	}

	// Write-through: file bytes, then the whole disk block containing the
	// new inode, per replica. The inode block is re-encoded at write time
	// so delayed background writes publish current (never stale) metadata.
	padded := make([]byte, blocks*int64(s.desc.BlockSize))
	copy(padded, data)
	dataOff := s.desc.DataOffset(start)
	commitStart := time.Now()
	err = s.replicas.Apply(pfactor, func(_ int, dev disk.Device) error {
		if err := dev.WriteAt(padded, dataOff); err != nil {
			return err
		}
		return s.table.WriteInode(dev, inode)
	})
	if err != nil {
		// No disk accepted the file during the synchronous phase: undo.
		if rerr := s.cache.Remove(idx, inode); rerr == nil {
			_ = s.table.Free(inode)
			s.dalloc.Free(start, blocks) //nolint:errcheck // rollback
		}
		return capability.Capability{}, fmt.Errorf("bullet: write-through failed: %w", err)
	}
	s.m.commit[pfactor].ObserveDuration(time.Since(commitStart))

	s.m.creates.Inc()
	s.m.bytesIn.Add(size)
	return capability.Owner(s.port, inode, random), nil
}

// clearEvictedLocked clears the cache-index field of inodes whose cached
// copies were evicted.
func (s *Server) clearEvictedLocked(evicted []uint32) {
	for _, n := range evicted {
		// The inode may have been deleted already; ignore ErrBadInode.
		_ = s.table.SetCacheIndex(n, 0)
	}
}

// Size implements BULLET.SIZE: the byte size of the file, so the client can
// allocate memory before BULLET.READ (paper §2.2).
func (s *Server) Size(c capability.Capability) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ino, err := s.verify(c, RightRead)
	if err != nil {
		return 0, err
	}
	return int64(ino.Size), nil
}

// Read implements BULLET.READ: the complete file contents in one
// operation. A cache hit serves straight from RAM; a miss loads the file
// contiguously from disk into the cache first (paper §3). The returned
// slice is the caller's to keep.
func (s *Server) Read(c capability.Capability) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, err := s.readLocked(c)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(data))
	copy(out, data)
	s.m.reads.Inc()
	s.m.bytesOut.Add(int64(len(out)))
	return out, nil
}

// readLocked returns a view of the file's cached bytes, faulting it in from
// disk if needed. The view aliases the cache; callers copy before unlocking.
func (s *Server) readLocked(c capability.Capability) ([]byte, error) {
	inode, ino, err := s.verify(c, RightRead)
	if err != nil {
		return nil, err
	}
	if ino.CacheIndex != 0 {
		data, err := s.cache.Get(ino.CacheIndex, inode)
		if err == nil {
			return data, nil // cache.Get counted the hit
		}
		// Stale index (should not happen; self-heal and fall through).
		_ = s.table.SetCacheIndex(inode, 0)
	}
	s.cache.NoteMiss()

	// Load the whole file contiguously from the main disk (§3: "the file
	// can be read into the RAM cache" in one transfer). A P-FACTOR-0
	// create may still have its write-through in flight (e.g. the cached
	// copy was evicted immediately); wait it out before trusting the disk.
	s.replicas.Drain()
	data := make([]byte, ino.Size)
	if ino.Size > 0 {
		if err := s.replicas.ReadAt(data, s.desc.DataOffset(int64(ino.FirstBlock))); err != nil {
			return nil, fmt.Errorf("bullet: reading file from disk: %w", err)
		}
	}
	idx, evicted, err := s.cache.Insert(inode, data)
	if err != nil {
		// Cache refusal (e.g. file as big as the arena under pressure) is
		// not fatal to the read itself.
		return data, nil //nolint:nilerr // serve uncached
	}
	s.clearEvictedLocked(evicted)
	if err := s.table.SetCacheIndex(inode, idx); err != nil {
		return nil, err
	}
	return data, nil
}

// Delete implements BULLET.DELETE: verify, zero the inode and write it back
// to all disks, free the cache copy and the disk extent (paper §3).
func (s *Server) Delete(c capability.Capability) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	inode, ino, err := s.verify(c, RightDelete)
	if err != nil {
		return err
	}
	// The freed extent becomes allocatable below; any still-pending
	// background write-through (P-FACTOR 0) targeting it must land first,
	// or it would clobber whatever file reuses the extent.
	s.replicas.Drain()
	if ino.CacheIndex != 0 {
		_ = s.cache.Remove(ino.CacheIndex, inode)
	}
	s.forgetCapsLocked(inode)
	if err := s.table.Free(inode); err != nil {
		return err
	}
	// Deletion involves requests to all disks (paper §4 note under Fig. 2).
	err = s.replicas.Apply(s.replicas.N(), func(_ int, dev disk.Device) error {
		return s.table.WriteInode(dev, inode)
	})
	if err != nil {
		return fmt.Errorf("bullet: persisting delete: %w", err)
	}
	if err := s.dalloc.Free(int64(ino.FirstBlock), ino.Blocks(s.desc.BlockSize)); err != nil {
		return fmt.Errorf("bullet: freeing extent: %w", err)
	}
	s.m.deletes.Inc()
	return nil
}

// Modify implements the §5 extension: generate a new immutable file from
// an existing one, "such that for a small modification it is not necessary
// any longer to transfer the whole file". The new file is the old contents
// resized to newSize (zero-filled when growing, truncated when shrinking;
// newSize < 0 keeps max(oldSize, offset+len(data))), with data spliced in
// at offset. The original file is untouched; a fresh capability is
// returned.
func (s *Server) Modify(c capability.Capability, offset int64, data []byte, newSize int64, pfactor int) (capability.Capability, error) {
	if offset < 0 {
		return capability.Capability{}, fmt.Errorf("offset %d: %w", offset, ErrBadOffset)
	}
	s.mu.Lock()
	old, err := func() ([]byte, error) {
		view, err := s.readLocked(c)
		if err != nil {
			return nil, err
		}
		// Modification additionally requires the modify right.
		if _, _, err := s.verify(c, RightModify); err != nil {
			return nil, err
		}
		out := make([]byte, len(view))
		copy(out, view)
		return out, nil
	}()
	s.mu.Unlock()
	if err != nil {
		return capability.Capability{}, err
	}

	size := newSize
	if size < 0 {
		size = int64(len(old))
		if end := offset + int64(len(data)); end > size {
			size = end
		}
	}
	// Bound before allocating: a hostile request could name a size in the
	// terabytes and the buffer is built here, not in Create.
	if size > s.MaxFileSize() {
		return capability.Capability{}, fmt.Errorf("%d bytes: %w", size, ErrTooLarge)
	}
	if offset+int64(len(data)) > size {
		return capability.Capability{}, fmt.Errorf("splice [%d,%d) past size %d: %w",
			offset, offset+int64(len(data)), size, ErrBadOffset)
	}
	merged := make([]byte, size)
	copy(merged, old)
	copy(merged[offset:], data)

	nc, err := s.Create(merged, pfactor)
	if err != nil {
		return capability.Capability{}, err
	}
	s.m.modifies.Inc()
	return nc, nil
}

// Append derives a new file consisting of the old contents followed by
// data — convenience over Modify.
func (s *Server) Append(c capability.Capability, data []byte, pfactor int) (capability.Capability, error) {
	size, err := s.Size(c)
	if err != nil {
		return capability.Capability{}, err
	}
	return s.Modify(c, size, data, size+int64(len(data)), pfactor)
}

// ReadRange returns n bytes of the file starting at offset — the §5
// accommodation for "processors with small memories" handling large files.
// The server-side path is identical to Read (the whole file is cached);
// only the reply payload shrinks.
func (s *Server) ReadRange(c capability.Capability, offset, n int64) ([]byte, error) {
	if offset < 0 || n < 0 {
		return nil, fmt.Errorf("range [%d,+%d): %w", offset, n, ErrBadOffset)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	data, err := s.readLocked(c)
	if err != nil {
		return nil, err
	}
	if offset > int64(len(data)) {
		return nil, fmt.Errorf("offset %d past size %d: %w", offset, len(data), ErrBadOffset)
	}
	end := offset + n
	if end > int64(len(data)) {
		end = int64(len(data))
	}
	out := make([]byte, end-offset)
	copy(out, data[offset:end])
	s.m.reads.Inc()
	s.m.bytesOut.Add(int64(len(out)))
	return out, nil
}

// Stats returns a snapshot of the engine counters, synthesized from the
// metrics registry (the counters are atomic; the snapshot is not a single
// consistent cut, which matches the old lock-free read semantics closely
// enough for reporting).
func (s *Server) Stats() Stats {
	cs := s.cache.Stats()
	return Stats{
		Creates:      s.m.creates.Load(),
		Reads:        s.m.reads.Load(),
		Deletes:      s.m.deletes.Load(),
		Modifies:     s.m.modifies.Load(),
		CacheHits:    cs.Hits,
		CacheMisses:  cs.Misses,
		CapCacheHits: s.m.capCacheHits.Load(),
		BytesIn:      s.m.bytesIn.Load(),
		BytesOut:     s.m.bytesOut.Load(),
		Compactions:  s.m.compactions.Load(),
	}
}

// Metrics returns the engine's stats registry — the full observability
// surface (counters, gauges, histograms) across every layer.
func (s *Server) Metrics() *stats.Registry { return s.metrics }

// StatsSnapshot returns a point-in-time view of the full metrics registry,
// authorized by c: any valid capability for a live file carrying the read
// right proves a legitimate client. Statistics are read-only, so the read
// right suffices.
func (s *Server) StatsSnapshot(c capability.Capability) (stats.Snapshot, error) {
	s.mu.Lock()
	_, _, err := s.verify(c, RightRead)
	s.mu.Unlock()
	if err != nil {
		return stats.Snapshot{}, err
	}
	return s.metrics.Snapshot(), nil
}

// CacheStats returns the RAM cache counters.
func (s *Server) CacheStats() cache.Stats { return s.cache.Stats() }

// DiskStats returns the data-area allocator state (fragmentation etc.).
func (s *Server) DiskStats() alloc.Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dalloc.Stats()
}

// Live returns the number of stored files.
func (s *Server) Live() int { return s.table.Live() }

// Objects lists the object numbers of all live files — an administrative
// operation for the garbage collector (Amoeba reconciled the directory
// service against the Bullet store with exactly such a scan).
func (s *Server) Objects() []uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []uint32
	s.table.ForEachUsed(func(n uint32, _ layout.Inode) { out = append(out, n) })
	return out
}

// ReadObjectAdmin returns a live object's contents and its owner
// capability without presenting a capability — an administrative
// operation for operators of the server itself (disaster recovery scans,
// the garbage collector). It must never be exposed over the network.
func (s *Server) ReadObjectAdmin(obj uint32) ([]byte, capability.Capability, error) {
	s.mu.Lock()
	ino, err := s.table.Get(obj)
	s.mu.Unlock()
	if err != nil {
		return nil, capability.Capability{}, fmt.Errorf("object %d: %w", obj, ErrNoSuchFile)
	}
	owner := capability.Owner(s.port, obj, ino.Random)
	data, err := s.Read(owner)
	if err != nil {
		return nil, capability.Capability{}, err
	}
	return data, owner, nil
}

// SweepExcept deletes every file whose object number is not in keep — the
// sweep half of the Amoeba garbage collector. It is an administrative,
// server-side operation (no capabilities involved) and must only run when
// the reference set is complete and stable, i.e. during quiescence: a
// file created after keep was collected but before the sweep would be
// reclaimed wrongly. The paper's operational answer — do maintenance "at
// say 3 am when the system is lightly loaded" — applies.
func (s *Server) SweepExcept(keep map[uint32]bool) (int, error) {
	s.mu.Lock()
	var victims []uint32
	var inos []layout.Inode
	s.table.ForEachUsed(func(n uint32, ino layout.Inode) {
		if !keep[n] {
			victims = append(victims, n)
			inos = append(inos, ino)
		}
	})
	s.mu.Unlock()

	for i, n := range victims {
		// Build an owner capability from the stored random and run the
		// ordinary delete path, so cache, disk free list and write-through
		// all stay consistent.
		c := capability.Owner(s.port, n, inos[i].Random)
		if err := s.Delete(c); err != nil {
			return i, fmt.Errorf("bullet: sweeping object %d: %w", n, err)
		}
	}
	return len(victims), nil
}

// Sync waits for all background (post-P-FACTOR) replica writes to land.
func (s *Server) Sync() { s.replicas.Drain() }

// Close drains background writes and closes the disks.
func (s *Server) Close() error { return s.replicas.Close() }
