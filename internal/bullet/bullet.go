// Package bullet implements the Bullet file server engine — the paper's
// primary contribution. Files are immutable, stored contiguously on disk,
// cached contiguously in RAM, and transferred whole. The only operations
// are create, size, read and delete (paper §2.2), plus the "create a new
// file from an existing file" extension of §5.
//
// The engine composes the substrates: the inode table and disk layout
// (internal/layout), the first-fit contiguous allocator (internal/alloc),
// the rnode RAM cache (internal/cache), N-way disk replication
// (internal/disk.ReplicaSet) and capability protection
// (internal/capability). Network transport lives one layer up, in
// internal/bulletsvc.
//
// Concurrency: the paper's server was single-threaded; this engine is not
// (see docs/CONCURRENCY.md for the full model and the departure note in
// DESIGN.md). Reads take the metadata lock shared, pin the cached bytes,
// and copy them to the caller outside any engine lock. Cache misses are
// deduplicated per inode (one disk read no matter how many concurrent
// readers miss on the same file) and the disk read itself runs with no
// engine lock held. Create holds the metadata lock only for its short
// allocation phase; the replica write-through — parallel across disks —
// happens outside it.
package bullet

import (
	"crypto/subtle"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"time"

	"bulletfs/internal/alloc"
	"bulletfs/internal/cache"
	"bulletfs/internal/capability"
	"bulletfs/internal/disk"
	"bulletfs/internal/layout"
	"bulletfs/internal/stats"
	"bulletfs/internal/trace"
)

// Engine-level errors.
var (
	// ErrNoSuchFile means the capability's object number does not name a
	// live file.
	ErrNoSuchFile = errors.New("bullet: no such file")
	// ErrTooLarge means a file does not fit in the server's cache memory;
	// the Bullet model requires whole files in RAM (paper §2).
	ErrTooLarge = errors.New("bullet: file too large for server memory")
	// ErrDiskFull means no contiguous extent can hold the file, even after
	// compaction.
	ErrDiskFull = errors.New("bullet: disk full")
	// ErrBadPFactor means the paranoia factor exceeds the number of disks
	// ("this requires the file server to have at least N disks", §2.2).
	ErrBadPFactor = errors.New("bullet: p-factor exceeds replica count")
	// ErrBadOffset means a modify/read range is malformed.
	ErrBadOffset = errors.New("bullet: bad offset or length")
)

// Rights understood by the Bullet server.
const (
	// RightRead covers BULLET.READ and BULLET.SIZE.
	RightRead = capability.RightRead
	// RightDelete covers BULLET.DELETE.
	RightDelete = capability.RightDelete
	// RightModify covers deriving new files from this one (§5 extension).
	RightModify = capability.RightModify
)

// Options configures a Server.
type Options struct {
	// Port is the server's capability port. Zero means draw a random one.
	Port capability.Port
	// CacheBytes is the RAM cache arena size. The paper's server used all
	// memory left after the inode table; default 8 MiB.
	CacheBytes int64
	// MaxCachedFiles bounds the rnode table; default 1024.
	MaxCachedFiles int
	// Metrics is the stats registry the engine threads through every
	// layer (cache, disks, its own counters). Nil means a private
	// registry; pass a shared one to co-locate RPC metrics.
	Metrics *stats.Registry
	// GroupCommitWindow enables group-committed creates: a create's
	// write-through may wait up to this long for concurrent creates to
	// share one replica fan-out (data writes back to back, each dirty
	// inode block written once). Zero disables grouping — every create
	// keeps its own fan-out, the pre-group-commit behaviour.
	GroupCommitWindow time.Duration
	// GroupCommitBatch caps how many creates share one fan-out before the
	// batch flushes early; default 64. Ignored unless GroupCommitWindow
	// is set.
	GroupCommitBatch int
}

func (o *Options) fill() error {
	if o.CacheBytes == 0 {
		o.CacheBytes = 8 << 20
	}
	if o.MaxCachedFiles == 0 {
		o.MaxCachedFiles = 1024
	}
	if (o.Port == capability.Port{}) {
		p, err := capability.NewPort()
		if err != nil {
			return err
		}
		o.Port = p
	}
	return nil
}

// Stats counts engine activity. It is a legacy snapshot view synthesized
// from the metrics registry; the registry itself (Metrics) additionally
// carries latency histograms and per-layer gauges.
type Stats struct {
	Creates      int64
	Reads        int64
	Deletes      int64
	Modifies     int64
	CacheHits    int64
	CacheMisses  int64
	CapCacheHits int64 // capability validations served from the §2.1 cache
	BytesIn      int64
	BytesOut     int64
	Compactions  int64
	FaultMerges  int64 // concurrent cache misses coalesced into one disk read
}

// engineMetrics holds the engine's handles into the stats registry. The
// handles are immutable after New; the counters themselves are atomic.
type engineMetrics struct {
	creates         *stats.Counter
	reads           *stats.Counter
	deletes         *stats.Counter
	modifies        *stats.Counter
	capCacheHits    *stats.Counter
	bytesIn         *stats.Counter
	bytesOut        *stats.Counter
	compactions     *stats.Counter
	compactionBytes *stats.Counter
	faultMerges     *stats.Counter
	uncachedCreates *stats.Counter
	sumBackfills    *stats.Counter     // checksums computed lazily on fault-in
	checksumFaults  *stats.Counter     // fault-ins that hit a checksum mismatch
	scrubRepairs    *stats.Counter     // replica extents rewritten by scrub
	scrubUnfixable  *stats.Counter     // objects no replica could verify
	leasePinned     *stats.Counter     // read leases served off a cache pin (zero-copy)
	leaseOwned      *stats.Counter     // read leases owning a fresh fault buffer
	readCopies      *stats.Counter     // payload copies performed by the read path
	commit          []*stats.Histogram // commit-to-disk latency, indexed by p-factor
}

func newEngineMetrics(reg *stats.Registry, replicas int) engineMetrics {
	m := engineMetrics{
		creates:         reg.Counter("bullet.creates"),
		reads:           reg.Counter("bullet.reads"),
		deletes:         reg.Counter("bullet.deletes"),
		modifies:        reg.Counter("bullet.modifies"),
		capCacheHits:    reg.Counter("bullet.capcache_hits"),
		bytesIn:         reg.Counter("bullet.bytes_in"),
		bytesOut:        reg.Counter("bullet.bytes_out"),
		compactions:     reg.Counter("bullet.disk_compactions"),
		compactionBytes: reg.Counter("bullet.compaction_bytes_moved"),
		faultMerges:     reg.Counter("bullet.fault_merges"),
		uncachedCreates: reg.Counter("bullet.uncached_creates"),
		sumBackfills:    reg.Counter("bullet.checksum_backfills"),
		checksumFaults:  reg.Counter("bullet.checksum_faults"),
		scrubRepairs:    reg.Counter("bullet.scrub_repairs"),
		scrubUnfixable:  reg.Counter("bullet.scrub_unrepairable"),
		leasePinned:     reg.Counter("bullet.lease_pinned"),
		leaseOwned:      reg.Counter("bullet.lease_owned"),
		readCopies:      reg.Counter("bullet.read_copies"),
	}
	for k := 0; k <= replicas; k++ {
		m.commit = append(m.commit,
			reg.Histogram(fmt.Sprintf("bullet.commit_ns.p%d", k), stats.DefaultLatencyBounds))
	}
	return m
}

// faultCall is the per-inode singleflight state for one cache-miss disk
// fault. The first miss on an uncached inode becomes the leader and does
// the disk read; every concurrent miss on the same inode becomes a waiter
// on done and shares the leader's result. random pins the fault to one
// incarnation of the inode number, so a waiter whose file was deleted and
// whose inode slot was reused never receives the other file's bytes.
type faultCall struct {
	random  capability.Random
	done    chan struct{}
	waiters int    // mutated under the server's faultMu
	data    []byte // written by the leader before done closes
	err     error  // written by the leader before done closes
}

// Server is one Bullet file server instance over a replica set.
type Server struct {
	port     capability.Port
	replicas *disk.ReplicaSet
	desc     layout.Descriptor

	// mu is the metadata lock. Shared holders (reads, size, fault
	// publishing) see a consistent inode→cache binding; exclusive holders
	// (create's allocation phase, delete, compaction) may change it. The
	// table, allocator and cache additionally carry their own internal
	// locks, so mu guards only the composite invariants, never a disk
	// transfer: reads copy pinned cache bytes outside it, and create's
	// replica write-through runs outside it.
	mu     sync.RWMutex
	table  *layout.Table
	dalloc *alloc.Allocator // data-area blocks
	cache  *cache.Cache

	// committer batches concurrent creates into shared replica fan-outs
	// (Options.GroupCommitWindow); nil when grouping is disabled. Queued
	// entries are invisible to replicas.Drain until flushed, so every
	// Drain site goes through flushCommits.
	committer *disk.GroupCommitter

	// commits tracks creates between publishing their metadata (under mu)
	// and registering their write-through with the replica set's drain
	// tracker. Delete and compaction must wait for it before trusting
	// Drain, or a write-through in that window would land on reused
	// ground. Add and Wait both happen with mu held exclusively, which
	// serializes them as the WaitGroup contract requires.
	commits sync.WaitGroup

	// inoMu serializes inode-block writes per replica. Two concurrent
	// creates whose inodes share a disk block would otherwise interleave
	// whole-block writes of different vintages on the same device; the
	// blocks are re-encoded from the live table inside the critical
	// section, so the last writer always publishes the freshest state.
	inoMu []sync.Mutex

	metrics *stats.Registry // immutable after New
	m       engineMetrics   // immutable handles; counters are atomic

	// capCache remembers successfully verified capabilities so repeat
	// requests skip the check-field computation — "Capabilities can be
	// cached to avoid decryption for each access" (paper §2.1). Entries
	// for an object are dropped when it is deleted; the whole cache is
	// bounded and evicted wholesale when full (verification is cheap, the
	// cache is an optimization, simplicity wins).
	capMu    sync.RWMutex
	capCache map[capability.Capability]capability.Rights // guarded by capMu

	// faults is the per-inode singleflight table for in-flight cache-miss
	// disk reads. faultMu is a leaf lock: never held while acquiring mu.
	faultMu sync.Mutex
	faults  map[uint32]*faultCall // guarded by faultMu

	// bg accounts background goroutines the engine launches (currently
	// only StartRecover's replica catch-up); Close waits for them before
	// closing the disks.
	bg sync.WaitGroup

	// recMu guards lastRecover, the report of the most recent online
	// recovery for the health endpoint.
	recMu       sync.Mutex
	lastRecover *RecoverReport // nil until the first StartRecover
}

// RecoverReport describes one online replica recovery for the health
// endpoint.
type RecoverReport struct {
	Replica int    `json:"replica"`
	Running bool   `json:"running"`
	Error   string `json:"error,omitempty"`
}

// maxCapCache bounds the verified-capability cache.
const maxCapCache = 4096

// castagnoli is the CRC32C polynomial table used for file checksums
// (layout.Inode.Sum). Castagnoli is hardware-accelerated on every platform
// Go targets, so verification on fault-in costs one linear pass.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// maxFaultRetries bounds how often a fault leader re-reads a file that
// compaction keeps moving out from under it.
const maxFaultRetries = 8

// Format writes a fresh Bullet filesystem onto every replica of the set.
func Format(replicas *disk.ReplicaSet, inodes int) error {
	return layout.Format(replicas, layout.FormatConfig{Inodes: inodes})
}

// New starts an engine over the (already formatted) replica set: it reads
// the complete inode table into RAM, scans it for consistency, rebuilds the
// disk free list from the inodes, and readies the cache (paper §3 startup
// sequence). Inodes the scan had to zero are persisted back to disk.
func New(replicas *disk.ReplicaSet, opts Options) (*Server, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	replicas.Drain() // settle any in-flight writes from a previous engine
	table, report, err := layout.Load(replicas)
	if err != nil {
		return nil, fmt.Errorf("bullet: loading inode table: %w", err)
	}
	for _, p := range report.Problems {
		if err := table.WriteInode(replicas, p.Inode); err != nil {
			return nil, fmt.Errorf("bullet: persisting scan fix for inode %d: %w", p.Inode, err)
		}
	}
	// A v1 (pre-checksum) disk is upgraded in place when the tail of its
	// data area is free; if a file is in the way the table stays v1 and
	// checksums live in RAM only until the next boot finds the tail clear.
	upgraded, err := table.UpgradeInPlace(replicas)
	if err != nil {
		return nil, fmt.Errorf("bullet: upgrading layout to v2: %w", err)
	}
	desc := table.Desc()

	var used []alloc.Extent
	table.ForEachUsed(func(_ uint32, ino layout.Inode) {
		used = append(used, alloc.Extent{
			Start: int64(ino.FirstBlock),
			Count: ino.Blocks(desc.BlockSize),
		})
	})
	dalloc, err := alloc.NewFromUsed(desc.DataSize, used)
	if err != nil {
		return nil, fmt.Errorf("bullet: rebuilding free list: %w", err)
	}
	fileCache, err := cache.New(opts.CacheBytes, opts.MaxCachedFiles)
	if err != nil {
		return nil, fmt.Errorf("bullet: building cache: %w", err)
	}
	reg := opts.Metrics
	if reg == nil {
		reg = stats.NewRegistry()
	}
	s := &Server{
		port:     opts.Port,
		replicas: replicas,
		desc:     desc,
		table:    table,
		dalloc:   dalloc,
		cache:    fileCache,
		inoMu:    make([]sync.Mutex, replicas.N()),
		metrics:  reg,
		m:        newEngineMetrics(reg, replicas.N()),
		capCache: make(map[capability.Capability]capability.Rights),
		faults:   make(map[uint32]*faultCall),
	}
	fileCache.AttachMetrics(reg)
	replicas.AttachMetrics(reg)
	if opts.GroupCommitWindow > 0 {
		s.committer = disk.NewGroupCommitter(replicas, opts.GroupCommitWindow, opts.GroupCommitBatch,
			func(i int, dev disk.Device, tags []uint32) error {
				s.inoMu[i].Lock()
				defer s.inoMu[i].Unlock()
				return s.table.WriteInodes(dev, tags)
			})
		s.committer.AttachMetrics(reg)
	}
	if upgraded {
		reg.Counter("bullet.table_upgrades").Inc()
	}
	reg.GaugeFunc("bullet.sum_dirty_blocks", func() int64 { return int64(s.table.DirtySums()) })
	reg.GaugeFunc("bullet.live_files", func() int64 { return int64(s.Live()) })
	reg.GaugeFunc("bullet.data_blocks_used", func() int64 { return s.DiskStats().Used })
	reg.GaugeFunc("bullet.data_blocks_free", func() int64 { return s.DiskStats().Free })
	reg.GaugeFunc("bullet.data_largest_free", func() int64 { return s.DiskStats().LargestFree })
	return s, nil
}

// Port returns the server's capability port.
func (s *Server) Port() capability.Port { return s.port }

// MaxFileSize returns the largest file this server accepts: it must fit in
// the RAM cache whole.
func (s *Server) MaxFileSize() int64 { return s.cache.Stats().TotalBytes }

// verify resolves a capability to its inode, checking the check field and
// the required rights. Successful check-field validations are remembered
// (paper §2.1), so only the rights test runs on repeats.
//
// Callers must hold s.mu (shared suffices). The lock keeps verification
// and Delete's capability-cache purge ordered: without it, a slow verify
// could re-insert a dead capability after the purge, and a reused inode
// slot would then honor the old file's capability.
func (s *Server) verify(c capability.Capability, want capability.Rights) (uint32, layout.Inode, error) {
	if c.Port != s.port {
		return 0, layout.Inode{}, fmt.Errorf("capability for another server: %w", ErrNoSuchFile)
	}
	ino, err := s.table.Get(c.Object)
	if err != nil {
		return 0, layout.Inode{}, fmt.Errorf("object %d: %w", c.Object, ErrNoSuchFile)
	}
	s.capMu.RLock()
	rights, ok := s.capCache[c]
	s.capMu.RUnlock()
	if ok {
		s.m.capCacheHits.Inc()
		if !rights.Has(want) {
			return 0, layout.Inode{}, fmt.Errorf("need rights %08b, have %08b: %w",
				want, rights, capability.ErrBadRights)
		}
		return c.Object, ino, nil
	}
	rights, err = capability.Verify(c, ino.Random)
	if err != nil {
		return 0, layout.Inode{}, err
	}
	s.capMu.Lock()
	if len(s.capCache) >= maxCapCache {
		clear(s.capCache)
	}
	s.capCache[c] = rights
	s.capMu.Unlock()
	if !rights.Has(want) {
		return 0, layout.Inode{}, fmt.Errorf("need rights %08b, have %08b: %w",
			want, rights, capability.ErrBadRights)
	}
	return c.Object, ino, nil
}

// forgetCaps drops cached capability validations for an object; its
// random number dies with it, and the inode slot will be reused. The
// deleting caller holds s.mu exclusively, which orders the purge against
// in-flight verifications (see verify).
func (s *Server) forgetCaps(obj uint32) {
	s.capMu.Lock()
	defer s.capMu.Unlock()
	for c := range s.capCache {
		if c.Object == obj {
			delete(s.capCache, c)
		}
	}
}

// blocksFor returns the data-area blocks needed for a file of n bytes.
func (s *Server) blocksFor(n int64) int64 {
	return (layout.Inode{Size: uint32(clampUint32(n))}).Blocks(s.desc.BlockSize)
}

func clampUint32(n int64) uint32 {
	if n < 0 {
		return 0
	}
	if n > 0xFFFFFFFF {
		return 0xFFFFFFFF
	}
	return uint32(n)
}

// Create implements BULLET.CREATE (paper §2.2): it stores data as a new
// immutable file and returns its owner capability. The paranoia factor
// selects when the call returns relative to the write-through replication:
// 0 returns once the file is in the RAM cache, k >= 1 returns after k disks
// hold both the file and its inode. The write-through to every disk always
// happens (paper §3); P-FACTOR only moves the reply.
//
// The metadata lock is held only while claiming the extent, the inode and
// the cache slot. The write-through itself runs outside it, in parallel
// across the replicas, so concurrent creates overlap their disk time and
// readers are never blocked behind a commit.
func (s *Server) Create(data []byte, pfactor int) (capability.Capability, error) {
	return s.CreateTraced(nil, nil, data, pfactor)
}

// create is the body of Create with span threading; sp is the enclosing
// engine-layer create span (nil when untraced) under which the cache
// insert and per-replica commit spans hang.
func (s *Server) create(tc *trace.Ctx, sp *trace.Span, data []byte, pfactor int) (capability.Capability, error) {
	if pfactor < 0 || pfactor > s.replicas.N() {
		return capability.Capability{}, fmt.Errorf("p-factor %d with %d disks: %w",
			pfactor, s.replicas.N(), ErrBadPFactor)
	}
	size := int64(len(data))
	if size > s.MaxFileSize() {
		return capability.Capability{}, fmt.Errorf("%d bytes: %w", size, ErrTooLarge)
	}
	random, err := capability.NewRandom()
	if err != nil {
		return capability.Capability{}, err
	}
	blocks := s.blocksFor(size)

	s.mu.Lock()
	// A contiguous extent in the data area, first fit; if fragmentation
	// defeats us but the space exists, compact the disk and retry (the
	// paper runs this nightly; we run it on demand).
	start, err := s.dalloc.Alloc(blocks)
	if errors.Is(err, alloc.ErrNoSpace) {
		if st := s.dalloc.Stats(); st.Free >= blocks {
			if cerr := s.compactDiskLocked(); cerr != nil {
				s.mu.Unlock()
				return capability.Capability{}, cerr
			}
			start, err = s.dalloc.Alloc(blocks)
		}
	}
	if err != nil {
		s.mu.Unlock()
		return capability.Capability{}, fmt.Errorf("%d blocks: %w", blocks, ErrDiskFull)
	}
	inode, err := s.table.Allocate(random, uint32(start), uint32(size))
	if err != nil {
		s.dalloc.Free(start, blocks) //nolint:errcheck // rollback of our own alloc
		s.mu.Unlock()
		return capability.Capability{}, err
	}
	// Record the file's CRC32C at birth. The entry is only marked dirty
	// here; it reaches the disk's checksum area in batches (Sync, Close,
	// the scrubber), so the write-through below stays one inode block per
	// create. A lost flush costs a lazy recompute on the next boot's first
	// fault-in, never correctness.
	_ = s.table.SetSum(inode, crc32.Checksum(data, castagnoli))

	// Into the RAM cache first: BULLET.CREATE with P-FACTOR 0 returns
	// "immediately after the file has been copied to the file server's RAM
	// cache, but before it has been stored on disk". The fresh entry is
	// pinned until every replica holds the bytes — an eviction before then
	// would let a concurrent cache miss read unwritten disk. If the cache
	// cannot take the file (arena pinned solid under a write burst), fall
	// back to an uncached create with at least one synchronous disk write.
	var pin *cache.View
	idx, evicted, cerr := s.cache.InsertTraced(tc, sp, inode, data)
	if cerr == nil {
		s.clearEvicted(evicted)
		if v, verr := s.cache.Pin(idx, inode); verr == nil {
			pin = v
		}
		if err := s.table.SetCacheIndex(inode, idx); err != nil {
			pin.Release()
			_ = s.cache.Remove(idx, inode)
			_ = s.table.Free(inode)
			s.dalloc.Free(start, blocks) //nolint:errcheck // rollback
			s.mu.Unlock()
			return capability.Capability{}, err
		}
	} else {
		s.m.uncachedCreates.Inc()
		idx = 0
		if pfactor == 0 {
			pfactor = 1
		}
	}
	// Deadline checkpoint: the last point where abandoning this create is
	// free. Past here the replica fan-out launches and its background
	// writes land in the allocated extent, so the budget is never checked
	// again — cancelling mid-commit would let this rollback free blocks
	// that in-flight writes still touch (internal/trace/deadline.go).
	if tc.DeadlineExceeded() {
		if pin != nil {
			pin.Release()
		}
		if idx != 0 {
			_ = s.cache.Remove(idx, inode)
		}
		_ = s.table.Free(inode)
		s.dalloc.Free(start, blocks) //nolint:errcheck // rollback
		s.mu.Unlock()
		return capability.Capability{}, fmt.Errorf("bullet: create abandoned before commit: %w", trace.ErrDeadlineExceeded)
	}
	s.commits.Add(1)
	s.mu.Unlock()

	// Write-through: file bytes, then the whole disk block containing the
	// new inode, per replica — all replicas in parallel, the caller
	// waiting only for the first pfactor of them. The inode block is
	// re-encoded at write time so delayed background writes publish
	// current (never stale) metadata.
	padded := make([]byte, blocks*int64(s.desc.BlockSize))
	copy(padded, data)
	dataOff := s.desc.DataOffset(start)
	commitStart := time.Now()
	if s.committer != nil {
		// Group commit: the data write joins a batch that shares one
		// replica fan-out (the committer's epilogue writes each dirty
		// inode block once per batch). The entry's quorum wait still
		// honours this create's P-FACTOR — it may just cover batch-mates
		// too. P-FACTOR 0 returns at submission, exactly as the ungrouped
		// path returns at launch.
		done := s.committer.Submit(disk.GroupEntry{
			SyncN: pfactor,
			Tag:   inode,
			Op: func(i int, dev disk.Device) error {
				return dev.WriteAt(padded, dataOff)
			},
			OnSettled: func() {
				// Every replica has finished (or failed): the disk copy is
				// as durable as it will get, so the cache entry may move.
				pin.Release()
			},
		})
		s.commits.Done()
		err = nil
		if pfactor > 0 {
			err = <-done
		}
	} else {
		err = s.replicas.ApplyNotifyTraced(tc, sp, pfactor, func(i int, dev disk.Device) error {
			if err := dev.WriteAt(padded, dataOff); err != nil {
				return err
			}
			s.inoMu[i].Lock()
			defer s.inoMu[i].Unlock()
			return s.table.WriteInode(dev, inode)
		}, func() {
			// Every replica has finished (or failed): the disk copy is as
			// durable as it will get, so the cache entry may move again.
			pin.Release()
		})
		s.commits.Done()
	}
	if err != nil {
		// No disk accepted the file during the synchronous phase: undo.
		s.mu.Lock()
		if idx != 0 {
			_ = s.cache.Remove(idx, inode)
		}
		_ = s.table.Free(inode)
		s.dalloc.Free(start, blocks) //nolint:errcheck // rollback
		s.mu.Unlock()
		return capability.Capability{}, fmt.Errorf("bullet: write-through failed: %w", err)
	}
	s.m.commit[pfactor].ObserveDuration(time.Since(commitStart))

	s.m.creates.Inc()
	s.m.bytesIn.Add(size)
	return capability.Owner(s.port, inode, random), nil
}

// clearEvicted clears the cache-index field of inodes whose cached copies
// were evicted. The clear is a compare-and-set on the evicted slot: if the
// inode's index no longer names that slot, a concurrent fault has already
// re-cached the file and the newer binding wins.
func (s *Server) clearEvicted(evicted []cache.Evicted) {
	for _, ev := range evicted {
		// The inode may have been deleted already; ignore ErrBadInode.
		_, _ = s.table.SetCacheIndexIf(ev.Inode, ev.Slot, 0)
	}
}

// Size implements BULLET.SIZE: the byte size of the file, so the client can
// allocate memory before BULLET.READ (paper §2.2).
func (s *Server) Size(c capability.Capability) (int64, error) {
	return s.SizeTraced(nil, nil, c)
}

// Read implements BULLET.READ: the complete file contents in one
// operation. A cache hit pins the cached bytes, leaves the engine lock,
// and copies them out while eviction and compaction route around the pin;
// a miss loads the file contiguously from disk into the cache first
// (paper §3), merged with any concurrent miss on the same file. The
// returned slice is the caller's to keep.
func (s *Server) Read(c capability.Capability) ([]byte, error) {
	return s.ReadTraced(nil, nil, c)
}

// ReadRange returns n bytes of the file starting at offset — the §5
// accommodation for "processors with small memories" handling large files.
// The server-side path is identical to Read (the whole file is cached);
// only the reply payload shrinks.
func (s *Server) ReadRange(c capability.Capability, offset, n int64) ([]byte, error) {
	return s.ReadRangeTraced(nil, nil, c, offset, n)
}

// fetchSpan returns [offset, offset+n) of the file c names (n < 0 means
// to the end) plus the file's total size. The returned slice is owned by
// the caller: a pinned lease is copied out (and released) here, an owned
// fault buffer is handed straight through. The zero-copy alternative is
// fetchLease (lease.go), which this wraps.
func (s *Server) fetchSpan(tc *trace.Ctx, parent *trace.Span, c capability.Capability, want capability.Rights, offset, n int64) ([]byte, int64, error) {
	l, err := s.fetchLease(tc, parent, c, want, offset, n)
	if err != nil {
		return nil, 0, err
	}
	size := l.Size()
	if !l.Pinned() {
		out := l.Bytes()
		l.Release()
		return out, size, nil
	}
	// append instead of make+copy: the runtime skips zeroing the fresh
	// slice, one full memory pass saved on every cached read.
	out := append([]byte(nil), l.Bytes()...)
	l.Release()
	s.m.readCopies.Inc()
	return out, size, nil
}

// sameRandom compares two inode random numbers in constant time. The
// incarnation checks below compare server-held values, but the random
// number is the raw material of the capability secret, so the repo's
// constant-time-comparison rule applies to it everywhere.
func sameRandom(a, b capability.Random) bool {
	return subtle.ConstantTimeCompare(a[:], b[:]) == 1
}

// faultIn coalesces concurrent cache misses on one inode into a single
// disk read. The first caller becomes the leader and reads the disk; the
// rest wait for its result. shared reports whether the returned slice is
// visible to other callers (waiters always; the leader only when someone
// merged with it) — shared data must be copied, never handed out. waited
// reports whether THIS caller merged onto another request's in-flight
// load (the trace's fault-merged attribute: the leader's span is not
// merged, so two concurrent cold reads show the attribute exactly once).
// The leader's disk and cache spans are recorded into the leader's own
// trace; a waiter's trace shows only the merged fault span.
func (s *Server) faultIn(tc *trace.Ctx, parent *trace.Span, inode uint32, random capability.Random) (data []byte, shared, waited bool, err error) {
	for {
		s.faultMu.Lock()
		if fc, ok := s.faults[inode]; ok {
			merged := sameRandom(fc.random, random)
			if merged {
				fc.waiters++
			}
			s.faultMu.Unlock()
			<-fc.done
			if merged {
				s.m.faultMerges.Inc()
				// Deadline checkpoint: a waiter that outlived its budget in
				// the merge queue sheds now — its caller has already given
				// up, and handing back the data would only be thrown away.
				// The leader's load is unaffected (the data is cached).
				if tc.DeadlineExceeded() {
					return nil, true, true, fmt.Errorf("bullet: fault wait outlived the caller's budget: %w", trace.ErrDeadlineExceeded)
				}
				return fc.data, true, true, fc.err
			}
			// The in-flight fault served a previous incarnation of this
			// inode number (deleted and reused); run our own.
			continue
		}
		fc := &faultCall{random: random, done: make(chan struct{})}
		s.faults[inode] = fc
		s.faultMu.Unlock()

		fc.data, fc.err = s.loadFile(tc, parent, inode, random)

		s.faultMu.Lock()
		delete(s.faults, inode)
		w := fc.waiters
		s.faultMu.Unlock()
		close(fc.done)
		return fc.data, w > 0, false, fc.err
	}
}

// loadFile is the fault leader's body: read the whole file contiguously
// from disk (§3: "the file can be read into the RAM cache" in one
// transfer) with no engine lock held, then publish it to the cache under
// the shared metadata lock. Delete and disk compaction hold the lock
// exclusively, so an inode revalidated under it cannot have moved or died
// between the check and the publish; if the file moved during the
// unlocked disk read, the read is retried against the new extent.
func (s *Server) loadFile(tc *trace.Ctx, parent *trace.Span, inode uint32, random capability.Random) ([]byte, error) {
	s.cache.NoteMiss()
	for attempt := 0; attempt < maxFaultRetries; attempt++ {
		s.mu.RLock()
		ino, err := s.table.Get(inode)
		s.mu.RUnlock()
		if err != nil || !sameRandom(ino.Random, random) {
			return nil, fmt.Errorf("object %d vanished during fault: %w", inode, ErrNoSuchFile)
		}
		if ino.CacheIndex != 0 {
			// Cached while we queued for fault leadership.
			s.mu.RLock()
			view, verr := s.cache.GetViewTraced(tc, parent, ino.CacheIndex, inode)
			s.mu.RUnlock()
			if verr == nil {
				out := append([]byte(nil), view.Bytes()...)
				view.Release()
				return out, nil
			}
			_, _ = s.table.SetCacheIndexIf(inode, ino.CacheIndex, 0)
			continue
		}

		// Deadline checkpoint: the cache fault is about to commit to a
		// whole-file disk read (plus a drain of in-flight writes); a
		// caller whose budget is already spent sheds here instead. Reads
		// mutate nothing, so unlike create there is no rollback to guard.
		if tc.DeadlineExceeded() {
			return nil, fmt.Errorf("bullet: cache fault abandoned, budget spent: %w", trace.ErrDeadlineExceeded)
		}

		// In-flight background write-throughs (an uncached create, or
		// replicas still catching up past the P-FACTOR) must land before
		// the disk is readable.
		s.flushCommits()
		s.replicas.Drain()
		data := make([]byte, ino.Size)
		var rerr error
		if ino.Size > 0 {
			off := s.desc.DataOffset(int64(ino.FirstBlock))
			if ino.HasSum {
				// Verified fault-in: a replica copy is only accepted if it
				// matches the inode's CRC32C; a mismatch fails over to the
				// next replica and rewrites the bad extent in place.
				want := ino.Sum
				rerr = s.replicas.ReadVerifiedTraced(tc, parent, data, off, func(p []byte) bool {
					return crc32.Checksum(p, castagnoli) == want
				})
			} else {
				rerr = s.replicas.ReadAtTraced(tc, parent, data, off)
			}
		}

		s.mu.RLock()
		cur, gerr := s.table.Get(inode)
		if gerr != nil || !sameRandom(cur.Random, random) {
			s.mu.RUnlock()
			return nil, fmt.Errorf("object %d vanished during fault: %w", inode, ErrNoSuchFile)
		}
		if cur.FirstBlock != ino.FirstBlock || cur.Size != ino.Size {
			s.mu.RUnlock()
			continue // compaction moved the file mid-read; reread
		}
		if rerr != nil {
			s.mu.RUnlock()
			// The inode did not move, so a checksum failure here means
			// every replica really holds corrupt data (not a stale read
			// racing compaction).
			if errors.Is(rerr, disk.ErrChecksum) {
				s.m.checksumFaults.Inc()
			}
			return nil, fmt.Errorf("bullet: reading file from disk: %w", rerr)
		}
		if !cur.HasSum {
			// Lazy backfill for files that predate checksums (v1-era disks):
			// the bytes just read — and just revalidated against the live
			// inode — define the file's CRC32C from here on.
			if s.table.SetSum(inode, crc32.Checksum(data, castagnoli)) == nil {
				s.m.sumBackfills.Inc()
			}
		}
		if cur.CacheIndex == 0 {
			// Cache refusal (e.g. arena pinned solid) is not fatal to the
			// read itself; serve uncached.
			if idx, evicted, cerr := s.cache.InsertTraced(tc, parent, inode, data); cerr == nil {
				s.clearEvicted(evicted)
				_, _ = s.table.SetCacheIndexIf(inode, 0, idx)
			}
		}
		s.mu.RUnlock()
		return data, nil
	}
	return nil, fmt.Errorf("bullet: object %d kept moving during fault: %w", inode, ErrNoSuchFile)
}

// Delete implements BULLET.DELETE: verify, zero the inode and write it back
// to all disks, free the cache copy and the disk extent (paper §3). It
// holds the metadata lock exclusively end to end: deletes are rare (the
// nightly GC sweep), and the extent hand-back must not interleave with
// compaction scanning or a fault publishing against the dying inode.
func (s *Server) Delete(c capability.Capability) error {
	return s.DeleteTraced(nil, nil, c)
}

// delete is the body of Delete with span threading; sp is the enclosing
// engine-layer delete span.
func (s *Server) delete(tc *trace.Ctx, sp *trace.Span, c capability.Capability) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	vsp := tc.Begin(sp, trace.LayerEngine, trace.OpVerify)
	inode, ino, err := s.verify(c, RightDelete)
	if vsp != nil {
		vsp.Inode = inode
		if err != nil {
			vsp.Status = 1
		}
	}
	tc.End(vsp)
	if err != nil {
		return err
	}
	// The freed extent becomes allocatable below; any still-pending
	// write-through targeting it must land first, or it would clobber
	// whatever file reuses the extent. Creates between metadata publish
	// and write-through registration are waited out first (commits), then
	// the registered writes themselves (Drain).
	s.commits.Wait()
	s.flushCommits()
	s.replicas.Drain()
	if ino.CacheIndex != 0 {
		// A pinned copy (readers mid-copy-out) is doomed, not freed; the
		// last reader's release reclaims it.
		_ = s.cache.Remove(ino.CacheIndex, inode)
	}
	s.forgetCaps(inode)
	if err := s.table.Free(inode); err != nil {
		return err
	}
	// Deletion involves requests to all disks (paper §4 note under Fig. 2),
	// in parallel.
	err = s.replicas.ApplyNotifyTraced(tc, sp, s.replicas.N(), func(i int, dev disk.Device) error {
		s.inoMu[i].Lock()
		defer s.inoMu[i].Unlock()
		return s.table.WriteInode(dev, inode)
	}, nil)
	if err != nil {
		return fmt.Errorf("bullet: persisting delete: %w", err)
	}
	if err := s.dalloc.Free(int64(ino.FirstBlock), ino.Blocks(s.desc.BlockSize)); err != nil {
		return fmt.Errorf("bullet: freeing extent: %w", err)
	}
	s.m.deletes.Inc()
	return nil
}

// Modify implements the §5 extension: generate a new immutable file from
// an existing one, "such that for a small modification it is not necessary
// any longer to transfer the whole file". The new file is the old contents
// resized to newSize (zero-filled when growing, truncated when shrinking;
// newSize < 0 keeps max(oldSize, offset+len(data))), with data spliced in
// at offset. The original file is untouched; a fresh capability is
// returned.
func (s *Server) Modify(c capability.Capability, offset int64, data []byte, newSize int64, pfactor int) (capability.Capability, error) {
	return s.ModifyTraced(nil, nil, c, offset, data, newSize, pfactor)
}

// modify is the body of Modify with span threading; sp is the enclosing
// engine-layer modify span (the derived file's create hangs under it).
func (s *Server) modify(tc *trace.Ctx, sp *trace.Span, c capability.Capability, offset int64, data []byte, newSize int64, pfactor int) (capability.Capability, error) {
	if offset < 0 {
		return capability.Capability{}, fmt.Errorf("offset %d: %w", offset, ErrBadOffset)
	}
	// Modification requires both the read right (the old contents flow
	// into the new file) and the modify right.
	old, _, err := s.fetchSpan(tc, sp, c, RightRead|RightModify, 0, -1)
	if err != nil {
		return capability.Capability{}, err
	}

	size := newSize
	if size < 0 {
		size = int64(len(old))
		if end := offset + int64(len(data)); end > size {
			size = end
		}
	}
	// Bound before allocating: a hostile request could name a size in the
	// terabytes and the buffer is built here, not in Create.
	if size > s.MaxFileSize() {
		return capability.Capability{}, fmt.Errorf("%d bytes: %w", size, ErrTooLarge)
	}
	if offset+int64(len(data)) > size {
		return capability.Capability{}, fmt.Errorf("splice [%d,%d) past size %d: %w",
			offset, offset+int64(len(data)), size, ErrBadOffset)
	}
	merged := make([]byte, size)
	copy(merged, old)
	copy(merged[offset:], data)

	nc, err := s.CreateTraced(tc, sp, merged, pfactor)
	if err != nil {
		return capability.Capability{}, err
	}
	s.m.modifies.Inc()
	return nc, nil
}

// Append derives a new file consisting of the old contents followed by
// data — convenience over Modify.
func (s *Server) Append(c capability.Capability, data []byte, pfactor int) (capability.Capability, error) {
	return s.AppendTraced(nil, nil, c, data, pfactor)
}

// Stats returns a snapshot of the engine counters, synthesized from the
// metrics registry (the counters are atomic; the snapshot is not a single
// consistent cut, which matches the old lock-free read semantics closely
// enough for reporting).
func (s *Server) Stats() Stats {
	cs := s.cache.Stats()
	return Stats{
		Creates:      s.m.creates.Load(),
		Reads:        s.m.reads.Load(),
		Deletes:      s.m.deletes.Load(),
		Modifies:     s.m.modifies.Load(),
		CacheHits:    cs.Hits,
		CacheMisses:  cs.Misses,
		CapCacheHits: s.m.capCacheHits.Load(),
		BytesIn:      s.m.bytesIn.Load(),
		BytesOut:     s.m.bytesOut.Load(),
		Compactions:  s.m.compactions.Load(),
		FaultMerges:  s.m.faultMerges.Load(),
	}
}

// Metrics returns the engine's stats registry — the full observability
// surface (counters, gauges, histograms) across every layer.
func (s *Server) Metrics() *stats.Registry { return s.metrics }

// StatsSnapshot returns a point-in-time view of the full metrics registry,
// authorized by c: any valid capability for a live file carrying the read
// right proves a legitimate client. Statistics are read-only, so the read
// right suffices.
func (s *Server) StatsSnapshot(c capability.Capability) (stats.Snapshot, error) {
	s.mu.RLock()
	_, _, err := s.verify(c, RightRead)
	s.mu.RUnlock()
	if err != nil {
		return stats.Snapshot{}, err
	}
	return s.metrics.Snapshot(), nil
}

// CacheStats returns the RAM cache counters.
func (s *Server) CacheStats() cache.Stats { return s.cache.Stats() }

// DiskStats returns the data-area allocator state (fragmentation etc.).
func (s *Server) DiskStats() alloc.Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.dalloc.Stats()
}

// Live returns the number of stored files.
func (s *Server) Live() int { return s.table.Live() }

// Objects lists the object numbers of all live files — an administrative
// operation for the garbage collector (Amoeba reconciled the directory
// service against the Bullet store with exactly such a scan).
func (s *Server) Objects() []uint32 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []uint32
	s.table.ForEachUsed(func(n uint32, _ layout.Inode) { out = append(out, n) })
	return out
}

// ReadObjectAdmin returns a live object's contents and its owner
// capability without presenting a capability — an administrative
// operation for operators of the server itself (disaster recovery scans,
// the garbage collector). It must never be exposed over the network.
func (s *Server) ReadObjectAdmin(obj uint32) ([]byte, capability.Capability, error) {
	s.mu.RLock()
	ino, err := s.table.Get(obj)
	s.mu.RUnlock()
	if err != nil {
		return nil, capability.Capability{}, fmt.Errorf("object %d: %w", obj, ErrNoSuchFile)
	}
	owner := capability.Owner(s.port, obj, ino.Random)
	data, err := s.Read(owner)
	if err != nil {
		return nil, capability.Capability{}, err
	}
	return data, owner, nil
}

// SweepExcept deletes every file whose object number is not in keep — the
// sweep half of the Amoeba garbage collector. It is an administrative,
// server-side operation (no capabilities involved) and must only run when
// the reference set is complete and stable, i.e. during quiescence: a
// file created after keep was collected but before the sweep would be
// reclaimed wrongly. The paper's operational answer — do maintenance "at
// say 3 am when the system is lightly loaded" — applies.
func (s *Server) SweepExcept(keep map[uint32]bool) (int, error) {
	s.mu.RLock()
	var victims []uint32
	var inos []layout.Inode
	s.table.ForEachUsed(func(n uint32, ino layout.Inode) {
		if !keep[n] {
			victims = append(victims, n)
			inos = append(inos, ino)
		}
	})
	s.mu.RUnlock()

	for i, n := range victims {
		// Build an owner capability from the stored random and run the
		// ordinary delete path, so cache, disk free list and write-through
		// all stay consistent.
		c := capability.Owner(s.port, n, inos[i].Random)
		if err := s.Delete(c); err != nil {
			return i, fmt.Errorf("bullet: sweeping object %d: %w", n, err)
		}
	}
	return len(victims), nil
}

// flushCommits forces any group-committed creates still waiting for
// their batch window into the replica set, so a following
// replicas.Drain observes them. Every engine Drain site calls this
// first; a nil committer (grouping disabled) is a no-op. Entry errors
// are delivered to the entries' own callers, not here.
func (s *Server) flushCommits() {
	if s.committer != nil {
		_ = s.committer.Flush()
	}
}

// Sync waits for all in-flight write-throughs — creates still between
// metadata publish and write registration, then the registered background
// (post-P-FACTOR) replica writes — to land.
func (s *Server) Sync() {
	s.mu.RLock()
	s.commits.Wait()
	s.mu.RUnlock()
	s.flushCommits()
	s.replicas.Drain()
	// Persist checksum entries recorded since the last flush (create and
	// lazy backfill only mark them dirty, keeping the write-through to one
	// inode block per create). The fan-out inside FlushSums is synchronous.
	_, _ = s.table.FlushSums(s.replicas)
}

// Close drains background writes (including any online recovery launched
// by StartRecover) and closes the disks.
func (s *Server) Close() error {
	s.Sync()
	s.bg.Wait()
	return s.replicas.Close()
}
