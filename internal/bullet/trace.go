package bullet

import (
	"fmt"

	"bulletfs/internal/capability"
	"bulletfs/internal/trace"
)

// This file is the engine's traced API surface: every public operation
// has a *Traced variant taking a span context and a parent span (both may
// be nil — the plain methods delegate with nil, so traced and untraced
// calls share one body). Each variant opens one engine-layer op span and
// threads tc down through the cache and disk layers, which hang their own
// spans (cache-lookup, cache-insert, disk-read, replica-commit) under it.

// CreateTraced is Create with span emission.
func (s *Server) CreateTraced(tc *trace.Ctx, parent *trace.Span, data []byte, pfactor int) (capability.Capability, error) {
	sp := tc.Begin(parent, trace.LayerEngine, trace.OpCreate)
	c, err := s.create(tc, sp, data, pfactor)
	if sp != nil {
		sp.Bytes = int64(len(data))
		sp.PFactor = int8(pfactor)
		sp.Inode = c.Object
		if err != nil {
			sp.Status = 1
		}
	}
	tc.End(sp)
	return c, err
}

// ReadTraced is Read with span emission.
func (s *Server) ReadTraced(tc *trace.Ctx, parent *trace.Span, c capability.Capability) ([]byte, error) {
	sp := tc.Begin(parent, trace.LayerEngine, trace.OpRead)
	data, _, err := s.fetchSpan(tc, sp, c, RightRead, 0, -1)
	if sp != nil {
		sp.Inode = c.Object
		sp.Bytes = int64(len(data))
		if err != nil {
			sp.Status = 1
		}
	}
	tc.End(sp)
	if err != nil {
		return nil, err
	}
	s.m.reads.Inc()
	s.m.bytesOut.Add(int64(len(data)))
	return data, nil
}

// ReadRangeTraced is ReadRange with span emission.
func (s *Server) ReadRangeTraced(tc *trace.Ctx, parent *trace.Span, c capability.Capability, offset, n int64) ([]byte, error) {
	if offset < 0 || n < 0 {
		return nil, fmt.Errorf("range [%d,+%d): %w", offset, n, ErrBadOffset)
	}
	sp := tc.Begin(parent, trace.LayerEngine, trace.OpReadRange)
	data, _, err := s.fetchSpan(tc, sp, c, RightRead, offset, n)
	if sp != nil {
		sp.Inode = c.Object
		sp.Bytes = int64(len(data))
		if err != nil {
			sp.Status = 1
		}
	}
	tc.End(sp)
	if err != nil {
		return nil, err
	}
	s.m.reads.Inc()
	s.m.bytesOut.Add(int64(len(data)))
	return data, nil
}

// SizeTraced is Size with span emission.
func (s *Server) SizeTraced(tc *trace.Ctx, parent *trace.Span, c capability.Capability) (int64, error) {
	sp := tc.Begin(parent, trace.LayerEngine, trace.OpSize)
	s.mu.RLock()
	vsp := tc.Begin(sp, trace.LayerEngine, trace.OpVerify)
	_, ino, err := s.verify(c, RightRead)
	if vsp != nil {
		vsp.Inode = c.Object
		if err != nil {
			vsp.Status = 1
		}
	}
	tc.End(vsp)
	s.mu.RUnlock()
	if sp != nil {
		sp.Inode = c.Object
		if err != nil {
			sp.Status = 1
		}
	}
	tc.End(sp)
	if err != nil {
		return 0, err
	}
	return int64(ino.Size), nil
}

// DeleteTraced is Delete with span emission.
func (s *Server) DeleteTraced(tc *trace.Ctx, parent *trace.Span, c capability.Capability) error {
	sp := tc.Begin(parent, trace.LayerEngine, trace.OpDelete)
	err := s.delete(tc, sp, c)
	if sp != nil {
		sp.Inode = c.Object
		if err != nil {
			sp.Status = 1
		}
	}
	tc.End(sp)
	return err
}

// ModifyTraced is Modify with span emission: the derived file's create
// (and its replica fan-out) appears as a child of the modify span.
func (s *Server) ModifyTraced(tc *trace.Ctx, parent *trace.Span, c capability.Capability, offset int64, data []byte, newSize int64, pfactor int) (capability.Capability, error) {
	sp := tc.Begin(parent, trace.LayerEngine, trace.OpModify)
	nc, err := s.modify(tc, sp, c, offset, data, newSize, pfactor)
	if sp != nil {
		sp.Inode = c.Object
		sp.Bytes = int64(len(data))
		sp.PFactor = int8(pfactor)
		if err != nil {
			sp.Status = 1
		}
	}
	tc.End(sp)
	return nc, err
}

// AppendTraced is Append with span emission.
func (s *Server) AppendTraced(tc *trace.Ctx, parent *trace.Span, c capability.Capability, data []byte, pfactor int) (capability.Capability, error) {
	sp := tc.Begin(parent, trace.LayerEngine, trace.OpAppend)
	nc, err := s.appendBody(tc, sp, c, data, pfactor)
	if sp != nil {
		sp.Inode = c.Object
		sp.Bytes = int64(len(data))
		sp.PFactor = int8(pfactor)
		if err != nil {
			sp.Status = 1
		}
	}
	tc.End(sp)
	return nc, err
}

func (s *Server) appendBody(tc *trace.Ctx, sp *trace.Span, c capability.Capability, data []byte, pfactor int) (capability.Capability, error) {
	size, err := s.SizeTraced(tc, sp, c)
	if err != nil {
		return capability.Capability{}, err
	}
	return s.ModifyTraced(tc, sp, c, size, data, size+int64(len(data)), pfactor)
}

// AuthorizeRead reports whether c is a valid capability for a live file
// carrying the read right — the admission check for the TRACE RPC (same
// rule as StatsSnapshot: observability is read-only, so the read right
// suffices).
func (s *Server) AuthorizeRead(c capability.Capability) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, _, err := s.verify(c, RightRead)
	return err
}
