//go:build chaos

package bullet_test

// Chaos acceptance test for the self-healing stack: three replicas, a
// bit-flipper corrupting the main replica's live extents continuously, a
// background scrubber, reader and writer stress, and one kill/revive +
// online-recovery cycle — all at once, under the race detector. The bar:
// no client ever sees a wrong byte or an error, and after the dust
// settles one scrub pass finds nothing left to fix and all three replica
// images are byte-identical.
//
// Run with: go test -race -tags chaos -run Chaos ./internal/bullet/

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bulletfs/internal/bullet"
	"bulletfs/internal/capability"
	"bulletfs/internal/disk"
	"bulletfs/internal/layout"
	"bulletfs/internal/scrub"
)

type chaosFile struct {
	cap  capability.Capability
	data []byte
}

type extent struct{ off, n int64 }

func TestChaosBitFlipsKillRevive(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test is not short")
	}

	mems := make([]*disk.MemDisk, 3)
	faulty := make([]*disk.FaultyDisk, 3)
	devs := make([]disk.Device, 3)
	for i := range devs {
		mem, err := disk.NewMem(512, 4096)
		if err != nil {
			t.Fatalf("NewMem: %v", err)
		}
		mems[i] = mem
		faulty[i] = disk.NewFaulty(mem)
		devs[i] = faulty[i]
	}
	set, err := disk.NewReplicaSet(devs...)
	if err != nil {
		t.Fatalf("NewReplicaSet: %v", err)
	}
	if err := bullet.Format(set, 200); err != nil {
		t.Fatalf("Format: %v", err)
	}
	// The flipper corrupts far more often than any real disk; don't let
	// the error budget quarantine the abused replica mid-test.
	set.SetErrorBudget(1 << 30)

	// A cache smaller than the working set keeps reads faulting in from
	// disk, which is where verification (and healing) happens.
	srv, err := bullet.New(set, bullet.Options{CacheBytes: 48 << 10})
	if err != nil {
		t.Fatalf("bullet.New: %v", err)
	}
	defer srv.Close() //nolint:errcheck // test exit

	// Fixed working set: 24 files of 4 KB, read continuously.
	rng := rand.New(rand.NewSource(42))
	files := make([]chaosFile, 24)
	for i := range files {
		data := make([]byte, 4096)
		rng.Read(data)
		c, err := srv.Create(data, 2)
		if err != nil {
			t.Fatalf("Create %d: %v", i, err)
		}
		files[i] = chaosFile{cap: c, data: data}
	}
	srv.Sync() // persist the inode table and checksums before snapshotting extents

	// The flipper targets the initial files' extents, located from the
	// on-disk table (the files are never moved during the test).
	desc, err := layout.ReadDescriptor(mems[0])
	if err != nil {
		t.Fatalf("ReadDescriptor: %v", err)
	}
	table, _, err := layout.Load(mems[0])
	if err != nil {
		t.Fatalf("layout.Load: %v", err)
	}
	var extents []extent
	table.ForEachUsed(func(_ uint32, ino layout.Inode) {
		extents = append(extents, extent{
			off: desc.DataOffset(int64(ino.FirstBlock)),
			n:   ino.Blocks(desc.BlockSize) * int64(desc.BlockSize),
		})
	})
	if len(extents) != len(files) {
		t.Fatalf("found %d live extents, want %d", len(extents), len(files))
	}

	sc := scrub.New(srv, scrub.Config{Interval: 25 * time.Millisecond, BytesPerSec: 64 << 20})
	sc.Start()
	defer sc.Stop()

	var (
		stop     = make(chan struct{})
		wg       sync.WaitGroup
		readErrs atomic.Int64
		flips    atomic.Int64
		errMu    sync.Mutex
		firstErr string
	)
	fail := func(format string, args ...any) {
		readErrs.Add(1)
		errMu.Lock()
		if firstErr == "" {
			firstErr = fmt.Sprintf(format, args...)
		}
		errMu.Unlock()
	}

	// Bit-flipper: persistent silent corruption on replica 0 (the main,
	// which serves every fault-in), bypassing the fault wrapper.
	wg.Add(1)
	go func() {
		defer wg.Done()
		frng := rand.New(rand.NewSource(7))
		b := make([]byte, 1)
		for {
			select {
			case <-stop:
				return
			default:
			}
			e := extents[frng.Intn(len(extents))]
			off := e.off + frng.Int63n(e.n)
			if mems[0].ReadAt(b, off) == nil {
				b[0] ^= 0x40
				_ = mems[0].WriteAt(b, off)
				flips.Add(1)
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	// Readers: every byte served must be the bytes written, every time.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rrng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				f := files[rrng.Intn(len(files))]
				got, err := srv.Read(f.cap)
				if err != nil {
					fail("client-visible read error: %v", err)
					return
				}
				if !bytes.Equal(got, f.data) {
					fail("client-visible corruption: read returned wrong bytes")
					return
				}
			}
		}(int64(100 + r))
	}

	// Writer: churn creates/reads/deletes so the kill is discovered and
	// degraded-mode commits run throughout.
	wg.Add(1)
	go func() {
		defer wg.Done()
		wrng := rand.New(rand.NewSource(9))
		for {
			select {
			case <-stop:
				return
			default:
			}
			data := make([]byte, 512+wrng.Intn(2048))
			wrng.Read(data)
			c, err := srv.Create(data, 2)
			if err != nil {
				fail("client-visible create error: %v", err)
				return
			}
			got, err := srv.Read(c)
			if err != nil || !bytes.Equal(got, data) {
				fail("client-visible read-back error: %v", err)
				return
			}
			if err := srv.Delete(c); err != nil {
				fail("client-visible delete error: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Kill replica 2 mid-chaos, let the writer's commits discover the
	// death, then revive the disk and recover it online.
	time.Sleep(400 * time.Millisecond)
	faulty[2].Fault()
	deadline := time.Now().Add(5 * time.Second)
	for set.Alive(2) {
		if time.Now().After(deadline) {
			t.Fatal("replica 2 never marked dead")
		}
		time.Sleep(time.Millisecond)
	}
	faulty[2].Heal()
	if err := srv.StartRecover(2); err != nil {
		t.Fatalf("StartRecover: %v", err)
	}
	deadline = time.Now().Add(10 * time.Second)
	for {
		h := srv.Health()
		if h.Recovering == -1 && h.LastRecover != nil && !h.LastRecover.Running {
			if h.LastRecover.Error != "" {
				t.Fatalf("recovery failed: %s", h.LastRecover.Error)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("recovery never finished")
		}
		time.Sleep(time.Millisecond)
	}
	if !set.Alive(2) {
		t.Fatal("replica 2 not alive after recovery")
	}

	// Keep the chaos going a while longer on the full set, then settle.
	time.Sleep(400 * time.Millisecond)
	close(stop)
	wg.Wait()

	if n := readErrs.Load(); n != 0 {
		errMu.Lock()
		defer errMu.Unlock()
		t.Fatalf("%d client-visible errors during chaos; first: %s", n, firstErr)
	}
	if flips.Load() == 0 {
		t.Fatal("flipper never flipped a byte")
	}
	if set.ChecksumErrors(0)+set.Repairs(0)+srv.Metrics().Snapshot().Counters["bullet.scrub_repairs"] == 0 {
		t.Fatal("no corruption was ever detected or repaired: the chaos did not bite")
	}

	// Quiesce and converge: with the flipper stopped, scrubbing must
	// reach a pass that finds nothing to fix.
	sc.Stop()
	srv.Sync()
	clean := false
	for pass := 0; pass < 5 && !clean; pass++ {
		repaired, unrepairable := 0, 0
		for _, obj := range srv.Objects() {
			res := srv.ScrubObject(obj)
			repaired += res.Repaired
			if res.Unrepairable {
				unrepairable++
			}
		}
		if unrepairable != 0 {
			t.Fatalf("pass %d: %d objects unrepairable", pass, unrepairable)
		}
		clean = repaired == 0
	}
	if !clean {
		t.Fatal("scrubbing never converged to a clean pass")
	}
	srv.Sync()

	// Zero divergence: all three replica images are byte-identical.
	s0 := mems[0].Snapshot()
	for i := 1; i < 3; i++ {
		if !bytes.Equal(s0, mems[i].Snapshot()) {
			t.Fatalf("replica %d diverges from replica 0 after full scrub", i)
		}
	}
}
