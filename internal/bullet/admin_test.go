package bullet

import (
	"bytes"
	"errors"
	"testing"

	"bulletfs/internal/capability"
)

func TestObjectsListsLiveFiles(t *testing.T) {
	w := newWorld(t, 2, Options{})
	if got := w.srv.Objects(); len(got) != 0 {
		t.Fatalf("fresh server objects = %v", got)
	}
	c1 := mustCreate(t, w.srv, []byte("a"), 2)
	c2 := mustCreate(t, w.srv, []byte("b"), 2)
	objs := w.srv.Objects()
	if len(objs) != 2 {
		t.Fatalf("objects = %v", objs)
	}
	seen := map[uint32]bool{}
	for _, o := range objs {
		seen[o] = true
	}
	if !seen[c1.Object] || !seen[c2.Object] {
		t.Fatalf("objects %v missing %d or %d", objs, c1.Object, c2.Object)
	}
	if err := w.srv.Delete(c1); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if objs := w.srv.Objects(); len(objs) != 1 || objs[0] != c2.Object {
		t.Fatalf("objects after delete = %v", objs)
	}
}

func TestSweepExcept(t *testing.T) {
	w := newWorld(t, 2, Options{})
	keepCap := mustCreate(t, w.srv, []byte("keep me"), 2)
	var doomed []capability.Capability
	for i := 0; i < 3; i++ {
		doomed = append(doomed, mustCreate(t, w.srv, []byte("orphan"), 2))
	}
	removed, err := w.srv.SweepExcept(map[uint32]bool{keepCap.Object: true})
	if err != nil {
		t.Fatalf("SweepExcept: %v", err)
	}
	if removed != 3 {
		t.Fatalf("removed = %d, want 3", removed)
	}
	if got := mustRead(t, w.srv, keepCap); !bytes.Equal(got, []byte("keep me")) {
		t.Fatal("kept file damaged")
	}
	for _, c := range doomed {
		if _, err := w.srv.Read(c); !errors.Is(err, ErrNoSuchFile) {
			t.Fatalf("swept file still readable: %v", err)
		}
	}
	// Disk space actually came back.
	if st := w.srv.DiskStats(); st.Used != 1 {
		t.Fatalf("disk used = %d blocks, want 1", st.Used)
	}
	// Sweep persists: a restart agrees.
	srv2, err := New(w.set, Options{Port: w.srv.Port(), CacheBytes: 1 << 20})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	if srv2.Live() != 1 {
		t.Fatalf("Live after restart = %d", srv2.Live())
	}
}

func TestSweepExceptEmptyKeepClearsEverything(t *testing.T) {
	w := newWorld(t, 2, Options{})
	for i := 0; i < 5; i++ {
		mustCreate(t, w.srv, []byte{byte(i)}, 2)
	}
	removed, err := w.srv.SweepExcept(nil)
	if err != nil || removed != 5 {
		t.Fatalf("SweepExcept = %d, %v", removed, err)
	}
	if w.srv.Live() != 0 {
		t.Fatalf("Live = %d", w.srv.Live())
	}
}

func TestCacheStatsAndCompactCache(t *testing.T) {
	w := newWorld(t, 2, Options{})
	mustCreate(t, w.srv, make([]byte, 1000), 2)
	st := w.srv.CacheStats()
	if st.Files != 1 || st.UsedBytes != 1000 {
		t.Fatalf("cache stats = %+v", st)
	}
	w.srv.CompactCache()
	if st := w.srv.CacheStats(); st.Compactions != 1 {
		t.Fatalf("compactions = %d", st.Compactions)
	}
}

func TestEngineClose(t *testing.T) {
	w := newWorld(t, 2, Options{})
	c := mustCreate(t, w.srv, []byte("x"), 0) // background write pending
	_ = c
	if err := w.srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Disks are closed: further writes fail cleanly.
	if _, err := w.srv.Create([]byte("y"), 1); err == nil {
		t.Fatal("Create after Close succeeded")
	}
}

func TestClampUint32(t *testing.T) {
	cases := []struct {
		in   int64
		want uint32
	}{
		{-5, 0}, {0, 0}, {7, 7}, {1 << 31, 1 << 31}, {1 << 40, 0xFFFFFFFF},
	}
	for _, c := range cases {
		if got := clampUint32(c.in); got != c.want {
			t.Errorf("clampUint32(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}
