package bullet

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bulletfs/internal/capability"
	"bulletfs/internal/disk"
)

// These tests exercise the concurrent read path: shared-lock reads over
// pinned cache views, the per-inode fault singleflight, and their
// interleaving with creates, deletes and both compactors. They are meant
// to run under -race (see the CI race-stress step).

func TestConcurrentReadersCreatorsDeleterCompaction(t *testing.T) {
	w := newWorld(t, 2, Options{})

	type entry struct {
		cap  capability.Capability
		data []byte
	}
	// Stable files are never deleted: readers can always verify them.
	var stable []entry
	for i := 0; i < 8; i++ {
		d := bytes.Repeat([]byte{byte('a' + i)}, 300+37*i)
		stable = append(stable, entry{mustCreate(t, w.srv, d, 2), d})
	}

	var (
		mu        sync.Mutex
		pool      []entry // creators push, the deleter pops
		stop      = make(chan struct{})
		bounded   sync.WaitGroup // readers + creators: fixed iteration counts
		unbounded sync.WaitGroup // deleter + compactor: run until stop
	)

	// Readers hammer the shared-lock path over the stable set and, racily,
	// over the churned pool (a pool read may hit a deleted file, which is
	// a legitimate ErrNoSuchFile, not a failure).
	for r := 0; r < 4; r++ {
		bounded.Add(1)
		go func(seed int64) {
			defer bounded.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 400; i++ {
				e := stable[rng.Intn(len(stable))]
				switch rng.Intn(3) {
				case 0:
					got, err := w.srv.Read(e.cap)
					if err != nil {
						t.Errorf("Read(stable): %v", err)
						return
					}
					if !bytes.Equal(got, e.data) {
						t.Errorf("Read(stable): wrong bytes")
						return
					}
				case 1:
					off := int64(rng.Intn(len(e.data)))
					got, err := w.srv.ReadRange(e.cap, off, 64)
					if err != nil {
						t.Errorf("ReadRange(stable): %v", err)
						return
					}
					end := off + 64
					if end > int64(len(e.data)) {
						end = int64(len(e.data))
					}
					if !bytes.Equal(got, e.data[off:end]) {
						t.Errorf("ReadRange(stable): wrong bytes at %d", off)
						return
					}
				default:
					if n, err := w.srv.Size(e.cap); err != nil || n != int64(len(e.data)) {
						t.Errorf("Size(stable) = %d, %v; want %d", n, err, len(e.data))
						return
					}
				}
				mu.Lock()
				var churn entry
				if len(pool) > 0 {
					churn = pool[rng.Intn(len(pool))]
				}
				mu.Unlock()
				if churn.data != nil {
					if got, err := w.srv.Read(churn.cap); err == nil && !bytes.Equal(got, churn.data) {
						t.Errorf("Read(pool): wrong bytes")
						return
					}
				}
			}
		}(int64(r))
	}

	// Creators allocate and publish into the pool.
	for c := 0; c < 2; c++ {
		bounded.Add(1)
		go func(seed int64) {
			defer bounded.Done()
			rng := rand.New(rand.NewSource(100 + seed))
			for i := 0; i < 60; i++ {
				d := bytes.Repeat([]byte{byte(rng.Intn(256))}, 100+rng.Intn(900))
				cp, err := w.srv.Create(d, 1+rng.Intn(2))
				if err != nil {
					t.Errorf("Create: %v", err)
					return
				}
				mu.Lock()
				pool = append(pool, entry{cp, d})
				mu.Unlock()
			}
		}(int64(c))
	}

	// The deleter drains the pool while everything else runs.
	unbounded.Add(1)
	go func() {
		defer unbounded.Done()
		rng := rand.New(rand.NewSource(7))
		for {
			select {
			case <-stop:
				return
			default:
			}
			mu.Lock()
			var victim entry
			if len(pool) > 1 {
				i := rng.Intn(len(pool))
				victim = pool[i]
				pool = append(pool[:i], pool[i+1:]...)
			}
			mu.Unlock()
			if victim.data == nil {
				time.Sleep(time.Millisecond)
				continue
			}
			if err := w.srv.Delete(victim.cap); err != nil {
				t.Errorf("Delete: %v", err)
				return
			}
		}
	}()

	// Both compactors run alongside; disk compaction takes the exclusive
	// lock, cache compaction defers to pinned views.
	unbounded.Add(1)
	go func() {
		defer unbounded.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := w.srv.CompactDisk(); err != nil {
				t.Errorf("CompactDisk: %v", err)
				return
			}
			if err := w.srv.CompactCache(); err != nil {
				t.Errorf("CompactCache: %v", err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Readers and creators run to their iteration counts; then the
	// deleter and compactor are told to stop. A watchdog catches wedges
	// (a deadlock here means the lock hierarchy is broken).
	finished := make(chan struct{})
	go func() {
		bounded.Wait()
		close(finished)
	}()
	select {
	case <-finished:
	case <-time.After(60 * time.Second):
		t.Fatal("stress test wedged: readers/creators did not finish")
	}
	close(stop)
	unbounded.Wait()

	// Settle and verify: every stable file and every survivor in the pool
	// still reads back intact, and the engine agrees with itself.
	w.srv.Sync()
	for i, e := range stable {
		if got := mustRead(t, w.srv, e.cap); !bytes.Equal(got, e.data) {
			t.Fatalf("stable file %d corrupted after stress", i)
		}
	}
	mu.Lock()
	survivors := append([]entry(nil), pool...)
	mu.Unlock()
	for i, e := range survivors {
		if got := mustRead(t, w.srv, e.cap); !bytes.Equal(got, e.data) {
			t.Fatalf("pool file %d corrupted after stress", i)
		}
	}
	if err := w.srv.CompactDisk(); err != nil {
		t.Fatalf("final CompactDisk: %v", err)
	}
	for i, e := range stable {
		if got := mustRead(t, w.srv, e.cap); !bytes.Equal(got, e.data) {
			t.Fatalf("stable file %d corrupted by final compaction", i)
		}
	}
}

// gateDevice parks every ReadAt while armed: the test uses it to hold a
// fault leader inside its disk read so a second miss can merge with it.
type gateDevice struct {
	disk.Device
	armed   atomic.Bool
	entered chan struct{} // signalled when a read parks
	release chan struct{} // closed to let parked reads proceed
}

func (d *gateDevice) ReadAt(p []byte, off int64) error {
	if d.armed.Load() {
		select {
		case d.entered <- struct{}{}:
		default:
		}
		<-d.release
	}
	return d.Device.ReadAt(p, off)
}

func TestConcurrentMissesShareOneDiskRead(t *testing.T) {
	mem, err := disk.NewMem(512, 4096)
	if err != nil {
		t.Fatalf("NewMem: %v", err)
	}
	gate := &gateDevice{Device: mem, entered: make(chan struct{}, 1), release: make(chan struct{})}
	var releaseOnce sync.Once
	release := func() {
		gate.armed.Store(false)
		releaseOnce.Do(func() { close(gate.release) })
	}
	defer release()

	set, err := disk.NewReplicaSet(gate)
	if err != nil {
		t.Fatalf("NewReplicaSet: %v", err)
	}
	if err := Format(set, 100); err != nil {
		t.Fatalf("Format: %v", err)
	}
	srv1, err := New(set, Options{CacheBytes: 1 << 20})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	data := bytes.Repeat([]byte{0xAB}, 2048)
	c := mustCreate(t, srv1, data, 1)
	srv1.Sync()

	// A fresh server over the same disks starts with a cold cache (the
	// startup scan strips cache indexes), so the first reads both miss.
	srv2, err := New(set, Options{Port: srv1.Port(), CacheBytes: 1 << 20})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	base := set.Reads(0)
	gate.armed.Store(true)

	results := make(chan error, 2)
	read := func() {
		got, rerr := srv2.Read(c)
		if rerr == nil && !bytes.Equal(got, data) {
			rerr = fmt.Errorf("read returned wrong bytes")
		}
		results <- rerr
	}
	go read()
	<-gate.entered // the fault leader is parked inside its disk read
	go read()

	// Wait until the second reader has registered on the in-flight fault,
	// proving it merged rather than queued behind a lock.
	deadline := time.Now().Add(10 * time.Second)
	for {
		srv2.faultMu.Lock()
		merged := false
		for _, fc := range srv2.faults {
			if fc.waiters > 0 {
				merged = true
			}
		}
		srv2.faultMu.Unlock()
		if merged {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("second reader never merged onto the in-flight fault")
		}
		time.Sleep(time.Millisecond)
	}
	release()

	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Fatalf("concurrent read %d: %v", i, err)
		}
	}
	if got := set.Reads(0) - base; got != 1 {
		t.Fatalf("disk reads for two concurrent misses = %d, want 1", got)
	}
	if m := srv2.Stats().FaultMerges; m != 1 {
		t.Fatalf("FaultMerges = %d, want 1", m)
	}
	// The fault published the file: a third read is a pure cache hit.
	hitsBefore := srv2.CacheStats().Hits
	if got := mustRead(t, srv2, c); !bytes.Equal(got, data) {
		t.Fatal("post-fault read corrupted")
	}
	if srv2.CacheStats().Hits != hitsBefore+1 {
		t.Fatal("post-fault read did not hit the cache")
	}
	if got := set.Reads(0) - base; got != 1 {
		t.Fatalf("post-fault read touched the disk: reads = %d", got)
	}
}
