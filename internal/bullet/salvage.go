package bullet

import (
	"bytes"
	"fmt"
	"hash/crc32"

	"bulletfs/internal/capability"
	"bulletfs/internal/disk"
)

// This file is the engine's self-healing surface: per-object scrubbing
// (compare every replica's copy of a file against its CRC32C and rewrite
// divergent extents), online replica recovery, and the health report the
// SALVAGE RPC serves. The background pacing lives one layer up, in
// internal/scrub; everything here is a single synchronous step.

// ErrBadReplica means a replica index was out of range for the set.
var ErrBadReplica = fmt.Errorf("bullet: no such replica")

// AuthorizeAdmin reports whether c is a valid capability for a live file
// carrying the admin right — the admission check for SALVAGE's mutating
// selectors (trigger scrub, trigger recovery). Reading the health report
// needs only AuthorizeRead: like stats and traces, it is read-only.
func (s *Server) AuthorizeAdmin(c capability.Capability) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, _, err := s.verify(c, capability.RightAdmin)
	return err
}

// ScrubResult reports what scrubbing one object found and did.
type ScrubResult struct {
	Object       uint32
	Bytes        int64 // bytes read from disk across all replicas
	Checked      int   // replica copies compared
	Repaired     int   // replica extents rewritten to the verified copy
	Backfilled   bool  // checksum recorded for the first time
	Unrepairable bool  // no replica held a copy matching the checksum
	Skipped      bool  // object vanished before the scrub reached it
}

// ScrubObject compares every live replica's copy of one file against the
// inode's CRC32C and rewrites divergent extents from the first verifying
// copy. For files that predate checksums it first establishes one by
// majority vote across the replicas. The metadata lock is held shared for
// the duration, which keeps delete and compaction (exclusive holders) from
// moving the extent mid-compare; the scrubber's rate limiter keeps these
// shared sections short and spaced.
func (s *Server) ScrubObject(obj uint32) ScrubResult {
	s.mu.RLock()
	defer s.mu.RUnlock()
	res := ScrubResult{Object: obj}
	ino, err := s.table.Get(obj)
	if err != nil || !ino.InUse() {
		res.Skipped = true
		return res
	}

	bs := s.desc.BlockSize
	extLen := ino.Blocks(bs) * int64(bs)
	off := s.desc.DataOffset(int64(ino.FirstBlock))

	// Writes still in flight toward this extent (a create past its
	// P-FACTOR quorum, or one still between metadata publish and write
	// registration) would read as divergence; settle them first. Both
	// waits are safe under the shared lock: commits.Add needs the lock
	// exclusively and background replica writes never take it at all.
	s.commits.Wait()
	s.flushCommits()
	s.replicas.Drain()

	copies := make([][]byte, s.replicas.N())
	readExtent := func(i int) []byte {
		if !s.replicas.Alive(i) {
			return nil
		}
		buf := make([]byte, extLen)
		if s.replicas.Device(i).ReadAt(buf, off) != nil {
			return nil
		}
		res.Bytes += extLen
		return buf
	}
	for i := range copies {
		copies[i] = readExtent(i)
		if copies[i] != nil {
			res.Checked++
		}
	}

	verifies := func(buf []byte) bool {
		return buf != nil && crc32.Checksum(buf[:ino.Size], castagnoli) == ino.Sum
	}

	// Pick the reference copy: the first one matching the checksum, or —
	// for pre-checksum files — the majority copy, which then defines the
	// checksum from here on.
	ref := -1
	if ino.HasSum {
		for i, buf := range copies {
			if verifies(buf) {
				ref = i
				break
			}
		}
		if ref < 0 {
			// Nothing verified: the reads may have raced a write-through
			// that registered after our Drain. Settle and retry once
			// before declaring the object unrepairable.
			s.flushCommits()
			s.replicas.Drain()
			for i := range copies {
				copies[i] = readExtent(i)
				if verifies(copies[i]) {
					ref = i
					break
				}
			}
		}
		if ref < 0 {
			res.Unrepairable = true
			s.m.scrubUnfixable.Inc()
			return res
		}
	} else {
		ref = majorityCopy(copies)
		if ref < 0 {
			res.Skipped = true // every replica dead or unreadable
			return res
		}
		if s.table.SetSum(obj, crc32.Checksum(copies[ref][:ino.Size], castagnoli)) == nil {
			res.Backfilled = true
			s.m.sumBackfills.Inc()
		}
	}

	// Rewrite every copy that differs from the reference, including ones
	// whose direct read failed (the write may still land; if not, Repair
	// demotes the replica through the ordinary error path).
	for i := range copies {
		if i == ref || !s.replicas.Alive(i) {
			continue
		}
		if copies[i] != nil && bytes.Equal(copies[i], copies[ref]) {
			continue
		}
		if s.replicas.Repair(i, copies[ref], off) == nil {
			res.Repaired++
			s.m.scrubRepairs.Inc()
		}
	}
	return res
}

// majorityCopy returns the index of the most common byte-identical extent
// among the non-nil copies (ties break toward the lowest replica index),
// or -1 if every copy is nil.
func majorityCopy(copies [][]byte) int {
	best, bestCount := -1, 0
	for i, a := range copies {
		if a == nil {
			continue
		}
		count := 0
		for _, b := range copies {
			if b != nil && bytes.Equal(a, b) {
				count++
			}
		}
		if count > bestCount {
			best, bestCount = i, count
		}
	}
	return best
}

// FlushSums persists any checksum entries recorded since the last flush.
// The scrubber calls it at the end of each pass so lazily backfilled
// checksums reach the disk without waiting for the next Sync.
func (s *Server) FlushSums() error {
	_, err := s.table.FlushSums(s.replicas)
	return err
}

// StartRecover launches an online catch-up copy that brings a dead or
// stale replica back into the set without stalling the engine: reads and
// creates proceed while the copy runs (disk.ReplicaSet.Recover mirrors
// new writes to the recovering replica and converges via a dirty-extent
// log). Returns disk.ErrRecovering if a recovery is already running.
func (s *Server) StartRecover(replica int) error {
	if replica < 0 || replica >= s.replicas.N() {
		return fmt.Errorf("replica %d of %d: %w", replica, s.replicas.N(), ErrBadReplica)
	}
	s.recMu.Lock()
	if s.lastRecover != nil && s.lastRecover.Running {
		s.recMu.Unlock()
		return disk.ErrRecovering
	}
	rep := &RecoverReport{Replica: replica, Running: true}
	s.lastRecover = rep
	s.recMu.Unlock()

	s.bg.Add(1)
	go func() {
		defer s.bg.Done() // accounted: Close waits the engine's bg group
		err := s.replicas.Recover(replica)
		s.recMu.Lock()
		rep.Running = false
		if err != nil {
			rep.Error = err.Error()
		}
		s.recMu.Unlock()
	}()
	return nil
}

// HealthReport is the engine's self-diagnosis, served by the SALVAGE RPC
// and `bulletctl health`.
type HealthReport struct {
	LiveFiles     int                  `json:"live_files"`
	LayoutVersion int                  `json:"layout_version"`
	DirtySums     int                  `json:"dirty_checksum_blocks"`
	Recovering    int                  `json:"recovering_replica"` // -1 when idle
	Promotions    int64                `json:"promotions"`
	Recoveries    int64                `json:"recoveries"`
	Replicas      []disk.ReplicaHealth `json:"replicas"`
	LastRecover   *RecoverReport       `json:"last_recover,omitempty"`
}

// Health assembles the engine's health report. It takes no engine lock
// beyond what the accessors take themselves; the report is a statistical
// snapshot, not a consistent cut.
func (s *Server) Health() HealthReport {
	h := HealthReport{
		LiveFiles:     s.Live(),
		LayoutVersion: s.table.Desc().Version,
		DirtySums:     s.table.DirtySums(),
		Recovering:    s.replicas.Recovering(),
		Promotions:    s.replicas.Promotions(),
		Recoveries:    s.replicas.Recoveries(),
		Replicas:      s.replicas.Health(),
	}
	s.recMu.Lock()
	if s.lastRecover != nil {
		cp := *s.lastRecover
		h.LastRecover = &cp
	}
	s.recMu.Unlock()
	return h
}
