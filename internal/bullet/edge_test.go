package bullet

import (
	"bulletfs/internal/capability"
	"bytes"
	"errors"
	"testing"
)

func TestModifyOfDeletedFile(t *testing.T) {
	w := newWorld(t, 2, Options{})
	c := mustCreate(t, w.srv, []byte("short lived"), 2)
	if err := w.srv.Delete(c); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := w.srv.Modify(c, 0, []byte("x"), -1, 2); !errors.Is(err, ErrNoSuchFile) {
		t.Fatalf("Modify(deleted) err = %v", err)
	}
	if _, err := w.srv.Append(c, []byte("x"), 2); !errors.Is(err, ErrNoSuchFile) {
		t.Fatalf("Append(deleted) err = %v", err)
	}
}

func TestAppendToEmptyFile(t *testing.T) {
	w := newWorld(t, 2, Options{})
	empty := mustCreate(t, w.srv, nil, 2)
	v2, err := w.srv.Append(empty, []byte("first bytes"), 2)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if got := mustRead(t, w.srv, v2); !bytes.Equal(got, []byte("first bytes")) {
		t.Fatalf("appended = %q", got)
	}
}

func TestModifyToEmpty(t *testing.T) {
	w := newWorld(t, 2, Options{})
	c := mustCreate(t, w.srv, []byte("contents"), 2)
	emptied, err := w.srv.Modify(c, 0, nil, 0, 2)
	if err != nil {
		t.Fatalf("Modify(newSize=0): %v", err)
	}
	if got := mustRead(t, w.srv, emptied); len(got) != 0 {
		t.Fatalf("emptied = %q", got)
	}
	size, err := w.srv.Size(emptied)
	if err != nil || size != 0 {
		t.Fatalf("Size = %d, %v", size, err)
	}
}

func TestCreateExactlyCacheSized(t *testing.T) {
	w := newWorld(t, 2, Options{CacheBytes: 64 << 10})
	data := bytes.Repeat([]byte{0x5C}, 64<<10)
	c, err := w.srv.Create(data, 2)
	if err != nil {
		t.Fatalf("Create(cache-sized): %v", err)
	}
	if got := mustRead(t, w.srv, c); !bytes.Equal(got, data) {
		t.Fatal("cache-sized file corrupted")
	}
	// One byte more is rejected.
	if _, err := w.srv.Create(append(data, 1), 2); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized err = %v", err)
	}
}

func TestReadRangeOnUncachedFile(t *testing.T) {
	w := newWorld(t, 2, Options{CacheBytes: 8 << 10})
	data := bytes.Repeat([]byte{1, 2, 3, 4}, 1024) // 4 KB
	c := mustCreate(t, w.srv, data, 2)
	// Evict it with a bigger file.
	mustCreate(t, w.srv, bytes.Repeat([]byte{9}, 6<<10), 2)
	got, err := w.srv.ReadRange(c, 100, 8)
	if err != nil {
		t.Fatalf("ReadRange(uncached): %v", err)
	}
	if !bytes.Equal(got, data[100:108]) {
		t.Fatalf("range = %v", got)
	}
}

func TestModifySpliceExactlyAtEnd(t *testing.T) {
	w := newWorld(t, 2, Options{})
	c := mustCreate(t, w.srv, []byte("abc"), 2)
	// Splicing [3,6) with natural size grows the file (same as append).
	v2, err := w.srv.Modify(c, 3, []byte("def"), -1, 2)
	if err != nil {
		t.Fatalf("Modify at end: %v", err)
	}
	if got := mustRead(t, w.srv, v2); !bytes.Equal(got, []byte("abcdef")) {
		t.Fatalf("got %q", got)
	}
	// Splicing that exactly fills an explicit newSize.
	v3, err := w.srv.Modify(c, 1, []byte("XY"), 3, 2)
	if err != nil {
		t.Fatalf("Modify exact fit: %v", err)
	}
	if got := mustRead(t, w.srv, v3); !bytes.Equal(got, []byte("aXY")) {
		t.Fatalf("got %q", got)
	}
}

func TestCapabilityCacheHitsAndInvalidation(t *testing.T) {
	w := newWorld(t, 2, Options{})
	c := mustCreate(t, w.srv, []byte("guarded"), 2)
	for i := 0; i < 5; i++ {
		mustRead(t, w.srv, c)
	}
	st := w.srv.Stats()
	// First read verifies and caches; the rest hit.
	if st.CapCacheHits < 4 {
		t.Fatalf("CapCacheHits = %d, want >= 4", st.CapCacheHits)
	}
	// A forged capability never enters the cache.
	forged := c
	forged.Check[0] ^= 1
	for i := 0; i < 3; i++ {
		if _, err := w.srv.Read(forged); !errors.Is(err, capability.ErrBadCheck) {
			t.Fatalf("forged read err = %v", err)
		}
	}
	// Restricted capability: cached too, but rights still enforced.
	readOnly, err := capability.Restrict(c, RightRead)
	if err != nil {
		t.Fatalf("Restrict: %v", err)
	}
	mustRead(t, w.srv, readOnly)
	mustRead(t, w.srv, readOnly) // cached validation
	if err := w.srv.Delete(readOnly); !errors.Is(err, capability.ErrBadRights) {
		t.Fatalf("cached validation leaked rights: %v", err)
	}

	// Deletion drops the cached validations: a replay of the old
	// capability against a reused inode slot must fail the check.
	if err := w.srv.Delete(c); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	c2 := mustCreate(t, w.srv, []byte("new tenant"), 2)
	if c2.Object != c.Object {
		t.Skipf("inode %d not reused (got %d)", c.Object, c2.Object)
	}
	if _, err := w.srv.Read(c); !errors.Is(err, capability.ErrBadCheck) {
		t.Fatalf("stale capability replay err = %v, want ErrBadCheck", err)
	}
	if _, err := w.srv.Read(readOnly); !errors.Is(err, capability.ErrBadCheck) {
		t.Fatalf("stale restricted replay err = %v, want ErrBadCheck", err)
	}
}

func TestDeleteWhileUncached(t *testing.T) {
	w := newWorld(t, 2, Options{CacheBytes: 4 << 10})
	c := mustCreate(t, w.srv, bytes.Repeat([]byte{7}, 3<<10), 2)
	mustCreate(t, w.srv, bytes.Repeat([]byte{8}, 3<<10), 2) // evicts c
	if err := w.srv.Delete(c); err != nil {
		t.Fatalf("Delete(uncached): %v", err)
	}
	if _, err := w.srv.Read(c); !errors.Is(err, ErrNoSuchFile) {
		t.Fatalf("Read after delete err = %v", err)
	}
}

func TestModifyRejectsAbsurdNewSize(t *testing.T) {
	w := newWorld(t, 2, Options{CacheBytes: 64 << 10})
	c := mustCreate(t, w.srv, []byte("small"), 2)
	// A hostile client names a terabyte-scale size: the engine must
	// refuse before allocating anything.
	if _, err := w.srv.Modify(c, 0, []byte("x"), 1<<40, 2); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("huge newSize err = %v, want ErrTooLarge", err)
	}
}
