package bullet

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"bulletfs/internal/capability"
	"bulletfs/internal/disk"

	"bulletfs/internal/stats"
)

// world bundles a test server with handles to its fault-injectable disks.
type world struct {
	srv    *Server
	set    *disk.ReplicaSet
	faulty []*disk.FaultyDisk
}

func newWorld(t *testing.T, replicas int, opts Options) *world {
	t.Helper()
	devs := make([]disk.Device, replicas)
	faulty := make([]*disk.FaultyDisk, replicas)
	for i := range devs {
		mem, err := disk.NewMem(512, 4096) // 2 MiB per disk
		if err != nil {
			t.Fatalf("NewMem: %v", err)
		}
		faulty[i] = disk.NewFaulty(mem)
		devs[i] = faulty[i]
	}
	set, err := disk.NewReplicaSet(devs...)
	if err != nil {
		t.Fatalf("NewReplicaSet: %v", err)
	}
	if err := Format(set, 500); err != nil {
		t.Fatalf("Format: %v", err)
	}
	if opts.CacheBytes == 0 {
		opts.CacheBytes = 1 << 20
	}
	srv, err := New(set, opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { srv.Sync() })
	return &world{srv: srv, set: set, faulty: faulty}
}

func mustCreate(t *testing.T, s *Server, data []byte, pf int) capability.Capability {
	t.Helper()
	c, err := s.Create(data, pf)
	if err != nil {
		t.Fatalf("Create(%d bytes, pf=%d): %v", len(data), pf, err)
	}
	return c
}

func mustRead(t *testing.T, s *Server, c capability.Capability) []byte {
	t.Helper()
	data, err := s.Read(c)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	return data
}

func TestCreateReadRoundTrip(t *testing.T) {
	w := newWorld(t, 2, Options{})
	data := []byte("files are stored contiguously, both on disk and in RAM")
	c := mustCreate(t, w.srv, data, 2)
	if got := mustRead(t, w.srv, c); !bytes.Equal(got, data) {
		t.Fatalf("Read = %q, want %q", got, data)
	}
	size, err := w.srv.Size(c)
	if err != nil {
		t.Fatalf("Size: %v", err)
	}
	if size != int64(len(data)) {
		t.Fatalf("Size = %d, want %d", size, len(data))
	}
}

func TestCreateReturnsOwnerCapability(t *testing.T) {
	w := newWorld(t, 2, Options{})
	c := mustCreate(t, w.srv, []byte("x"), 1)
	if c.Rights != capability.RightsAll {
		t.Fatalf("rights = %08b, want owner", c.Rights)
	}
	if c.Port != w.srv.Port() {
		t.Fatal("capability names the wrong port")
	}
}

func TestEmptyFile(t *testing.T) {
	w := newWorld(t, 2, Options{})
	c := mustCreate(t, w.srv, nil, 2)
	if got := mustRead(t, w.srv, c); len(got) != 0 {
		t.Fatalf("Read(empty) = %q", got)
	}
	size, err := w.srv.Size(c)
	if err != nil || size != 0 {
		t.Fatalf("Size = %d, %v", size, err)
	}
}

func TestReadIsACopy(t *testing.T) {
	w := newWorld(t, 2, Options{})
	c := mustCreate(t, w.srv, []byte("immutable"), 2)
	got := mustRead(t, w.srv, c)
	got[0] = 'X'
	if again := mustRead(t, w.srv, c); !bytes.Equal(again, []byte("immutable")) {
		t.Fatal("mutating a read result corrupted the stored file")
	}
}

func TestDeleteRemovesFile(t *testing.T) {
	w := newWorld(t, 2, Options{})
	c := mustCreate(t, w.srv, []byte("short-lived"), 2)
	if err := w.srv.Delete(c); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := w.srv.Read(c); !errors.Is(err, ErrNoSuchFile) {
		t.Fatalf("Read after delete err = %v, want ErrNoSuchFile", err)
	}
	if _, err := w.srv.Size(c); !errors.Is(err, ErrNoSuchFile) {
		t.Fatalf("Size after delete err = %v", err)
	}
	if err := w.srv.Delete(c); !errors.Is(err, ErrNoSuchFile) {
		t.Fatalf("double Delete err = %v", err)
	}
	if w.srv.Live() != 0 {
		t.Fatalf("Live = %d, want 0", w.srv.Live())
	}
}

func TestDeleteFreesDiskSpace(t *testing.T) {
	w := newWorld(t, 2, Options{})
	before := w.srv.DiskStats()
	c := mustCreate(t, w.srv, make([]byte, 10*512), 2)
	mid := w.srv.DiskStats()
	if mid.Used != before.Used+10 {
		t.Fatalf("Used = %d blocks, want %d", mid.Used, before.Used+10)
	}
	if err := w.srv.Delete(c); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	after := w.srv.DiskStats()
	if after.Used != before.Used {
		t.Fatalf("Used = %d after delete, want %d", after.Used, before.Used)
	}
}

func TestRightsEnforcement(t *testing.T) {
	w := newWorld(t, 2, Options{})
	owner := mustCreate(t, w.srv, []byte("guarded"), 2)

	readOnly, err := capability.Restrict(owner, RightRead)
	if err != nil {
		t.Fatalf("Restrict: %v", err)
	}
	if _, err := w.srv.Read(readOnly); err != nil {
		t.Fatalf("Read with read-only cap: %v", err)
	}
	if err := w.srv.Delete(readOnly); !errors.Is(err, capability.ErrBadRights) {
		t.Fatalf("Delete with read-only cap err = %v, want ErrBadRights", err)
	}

	deleteOnly, err := capability.Restrict(owner, RightDelete)
	if err != nil {
		t.Fatalf("Restrict: %v", err)
	}
	if _, err := w.srv.Read(deleteOnly); !errors.Is(err, capability.ErrBadRights) {
		t.Fatalf("Read with delete-only cap err = %v, want ErrBadRights", err)
	}
	if err := w.srv.Delete(deleteOnly); err != nil {
		t.Fatalf("Delete with delete-only cap: %v", err)
	}
}

func TestForgedCapabilityRejected(t *testing.T) {
	w := newWorld(t, 2, Options{})
	c := mustCreate(t, w.srv, []byte("secret"), 2)
	forged := c
	forged.Check[0] ^= 0xFF
	if _, err := w.srv.Read(forged); !errors.Is(err, capability.ErrBadCheck) {
		t.Fatalf("Read with forged check err = %v, want ErrBadCheck", err)
	}
	wrongPort := c
	wrongPort.Port[0] ^= 0xFF
	if _, err := w.srv.Read(wrongPort); !errors.Is(err, ErrNoSuchFile) {
		t.Fatalf("Read with wrong port err = %v, want ErrNoSuchFile", err)
	}
	badObject := c
	badObject.Object = 12345
	if _, err := w.srv.Read(badObject); !errors.Is(err, ErrNoSuchFile) {
		t.Fatalf("Read of unknown object err = %v, want ErrNoSuchFile", err)
	}
}

func TestPFactorValidation(t *testing.T) {
	w := newWorld(t, 2, Options{})
	if _, err := w.srv.Create([]byte("x"), 3); !errors.Is(err, ErrBadPFactor) {
		t.Fatalf("pf=3 with 2 disks err = %v, want ErrBadPFactor", err)
	}
	if _, err := w.srv.Create([]byte("x"), -1); !errors.Is(err, ErrBadPFactor) {
		t.Fatalf("pf=-1 err = %v, want ErrBadPFactor", err)
	}
}

func TestPFactorZeroEventuallyDurable(t *testing.T) {
	w := newWorld(t, 2, Options{})
	data := []byte("async but still written through")
	c := mustCreate(t, w.srv, data, 0)
	w.srv.Sync() // wait for background write-through
	// Both replicas must hold the inode and the data: restart from disks.
	srv2, err := New(w.set, Options{Port: w.srv.Port(), CacheBytes: 1 << 20})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	if got := mustRead(t, srv2, c); !bytes.Equal(got, data) {
		t.Fatalf("after restart Read = %q, want %q", got, data)
	}
}

func TestCacheHitVsMiss(t *testing.T) {
	w := newWorld(t, 2, Options{})
	data := []byte("cached after create")
	c := mustCreate(t, w.srv, data, 2)
	mustRead(t, w.srv, c) // created files are cached: hit
	st := w.srv.Stats()
	if st.CacheHits != 1 || st.CacheMisses != 0 {
		t.Fatalf("stats = %+v, want 1 hit / 0 misses", st)
	}

	// A fresh server over the same disks has a cold cache.
	srv2, err := New(w.set, Options{Port: w.srv.Port(), CacheBytes: 1 << 20})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	if got := mustRead(t, srv2, c); !bytes.Equal(got, data) {
		t.Fatalf("cold read = %q", got)
	}
	st2 := srv2.Stats()
	if st2.CacheMisses != 1 {
		t.Fatalf("stats = %+v, want 1 miss", st2)
	}
	// Second read hits.
	mustRead(t, srv2, c)
	st2 = srv2.Stats()
	if st2.CacheHits != 1 {
		t.Fatalf("stats = %+v, want 1 hit", st2)
	}
}

func TestRestartAfterCrashRecoversAllFiles(t *testing.T) {
	w := newWorld(t, 2, Options{})
	type f struct {
		cap  capability.Capability
		data []byte
	}
	var files []f
	for i := 0; i < 20; i++ {
		data := bytes.Repeat([]byte{byte(i + 1)}, (i*97)%2000+1)
		files = append(files, f{cap: mustCreate(t, w.srv, data, 2), data: data})
	}
	// Delete a few.
	for i := 0; i < 20; i += 4 {
		if err := w.srv.Delete(files[i].cap); err != nil {
			t.Fatalf("Delete: %v", err)
		}
	}
	// "Crash": no shutdown; just bring up a new server on the same disks.
	srv2, err := New(w.set, Options{Port: w.srv.Port(), CacheBytes: 1 << 20})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	for i, file := range files {
		if i%4 == 0 {
			if _, err := srv2.Read(file.cap); !errors.Is(err, ErrNoSuchFile) {
				t.Fatalf("deleted file %d resurrected: %v", i, err)
			}
			continue
		}
		if got := mustRead(t, srv2, file.cap); !bytes.Equal(got, file.data) {
			t.Fatalf("file %d corrupted after restart", i)
		}
	}
	if srv2.Live() != 15 {
		t.Fatalf("Live = %d, want 15", srv2.Live())
	}
}

func TestMainDiskFailureTransparent(t *testing.T) {
	w := newWorld(t, 2, Options{CacheBytes: 4096}) // tiny cache forces disk reads
	data := bytes.Repeat([]byte{7}, 3000)
	c := mustCreate(t, w.srv, data, 2)
	// Push the file out of cache.
	c2 := mustCreate(t, w.srv, bytes.Repeat([]byte{8}, 4000), 2)
	_ = c2

	w.faulty[0].Fault()
	if got := mustRead(t, w.srv, c); !bytes.Equal(got, data) {
		t.Fatal("read after main-disk failure returned wrong data")
	}
	// Writes keep working on the survivor.
	c3 := mustCreate(t, w.srv, []byte("degraded mode"), 1)
	if got := mustRead(t, w.srv, c3); !bytes.Equal(got, []byte("degraded mode")) {
		t.Fatal("create in degraded mode failed")
	}
}

func TestDiskRecoveryAfterRepair(t *testing.T) {
	w := newWorld(t, 2, Options{})
	c1 := mustCreate(t, w.srv, []byte("before failure"), 2)
	w.faulty[1].Fault()
	c2 := mustCreate(t, w.srv, []byte("during degraded mode"), 1)

	w.faulty[1].Heal()
	if err := w.set.Recover(1); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	// Kill the main; everything must now be served from the recovered disk.
	w.faulty[0].Fault()
	srv2, err := New(w.set, Options{Port: w.srv.Port(), CacheBytes: 1 << 20})
	if err != nil {
		t.Fatalf("restart on recovered disk: %v", err)
	}
	if got := mustRead(t, srv2, c1); !bytes.Equal(got, []byte("before failure")) {
		t.Fatal("pre-failure file lost")
	}
	if got := mustRead(t, srv2, c2); !bytes.Equal(got, []byte("during degraded mode")) {
		t.Fatal("degraded-mode file missing from recovered disk")
	}
}

func TestCreateFailsWhenAllDisksDead(t *testing.T) {
	w := newWorld(t, 2, Options{})
	w.faulty[0].Fault()
	w.faulty[1].Fault()
	if _, err := w.srv.Create([]byte("doomed"), 1); err == nil {
		t.Fatal("Create with all disks dead succeeded")
	}
	if w.srv.Live() != 0 {
		t.Fatalf("failed create leaked an inode: Live = %d", w.srv.Live())
	}
	st := w.srv.DiskStats()
	if st.Used != 0 {
		t.Fatalf("failed create leaked disk space: %+v", st)
	}
}

func TestTooLargeRejected(t *testing.T) {
	w := newWorld(t, 2, Options{CacheBytes: 8192})
	if _, err := w.srv.Create(make([]byte, 8193), 2); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestDiskFull(t *testing.T) {
	w := newWorld(t, 2, Options{CacheBytes: 4 << 20})
	// Data area is ~4096-? blocks of 512 B = ~2 MiB. Fill it up.
	var caps []capability.Capability
	for {
		c, err := w.srv.Create(make([]byte, 64*1024), 2)
		if errors.Is(err, ErrDiskFull) {
			break
		}
		if err != nil {
			t.Fatalf("Create: %v", err)
		}
		caps = append(caps, c)
		if len(caps) > 100 {
			t.Fatal("disk never filled")
		}
	}
	// Delete one file; the same size must fit again.
	if err := w.srv.Delete(caps[0]); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := w.srv.Create(make([]byte, 64*1024), 2); err != nil {
		t.Fatalf("Create after delete: %v", err)
	}
}

func TestAutoCompactionDefeatsFragmentation(t *testing.T) {
	w := newWorld(t, 2, Options{CacheBytes: 4 << 20})
	// Fill the disk with 64 KiB files, delete every other one: free space
	// is ~half the disk but shattered into 64 KiB holes.
	var caps []capability.Capability
	for {
		c, err := w.srv.Create(make([]byte, 64*1024), 2)
		if errors.Is(err, ErrDiskFull) {
			break
		}
		if err != nil {
			t.Fatalf("Create: %v", err)
		}
		caps = append(caps, c)
	}
	for i := 0; i < len(caps); i += 2 {
		if err := w.srv.Delete(caps[i]); err != nil {
			t.Fatalf("Delete: %v", err)
		}
	}
	free := w.srv.DiskStats().Free * 512
	big := int(free - free/8) // clearly larger than any single hole
	if big <= 64*1024 {
		t.Skipf("free space too small for a meaningful test: %d", free)
	}
	c, err := w.srv.Create(make([]byte, big), 2)
	if err != nil {
		t.Fatalf("Create(big) should trigger compaction: %v", err)
	}
	if w.srv.Stats().Compactions == 0 {
		t.Fatal("no compaction recorded")
	}
	// Every surviving file still reads correctly after the great slide.
	for i := 1; i < len(caps); i += 2 {
		if _, err := w.srv.Read(caps[i]); err != nil {
			t.Fatalf("file %d unreadable after compaction: %v", i, err)
		}
	}
	if _, err := w.srv.Read(c); err != nil {
		t.Fatalf("big file unreadable: %v", err)
	}
}

func TestExplicitCompactDisk(t *testing.T) {
	w := newWorld(t, 2, Options{})
	var caps []capability.Capability
	var datas [][]byte
	for i := 0; i < 10; i++ {
		d := bytes.Repeat([]byte{byte(i + 1)}, 600+i*13)
		caps = append(caps, mustCreate(t, w.srv, d, 2))
		datas = append(datas, d)
	}
	for i := 0; i < 10; i += 2 {
		if err := w.srv.Delete(caps[i]); err != nil {
			t.Fatalf("Delete: %v", err)
		}
	}
	if err := w.srv.CompactDisk(); err != nil {
		t.Fatalf("CompactDisk: %v", err)
	}
	st := w.srv.DiskStats()
	if st.FreeExtents != 1 {
		t.Fatalf("free extents = %d after compaction, want 1", st.FreeExtents)
	}
	for i := 1; i < 10; i += 2 {
		if got := mustRead(t, w.srv, caps[i]); !bytes.Equal(got, datas[i]) {
			t.Fatalf("file %d corrupted by compaction", i)
		}
	}
	// The moved files must be intact on disk, not only in cache: restart.
	srv2, err := New(w.set, Options{Port: w.srv.Port(), CacheBytes: 1 << 20})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	for i := 1; i < 10; i += 2 {
		if got := mustRead(t, srv2, caps[i]); !bytes.Equal(got, datas[i]) {
			t.Fatalf("file %d corrupted on disk by compaction", i)
		}
	}
}

func TestModifyCreatesNewVersion(t *testing.T) {
	w := newWorld(t, 2, Options{})
	v1 := mustCreate(t, w.srv, []byte("hello horrid world"), 2)
	v2, err := w.srv.Modify(v1, 6, []byte("bullet"), -1, 2)
	if err != nil {
		t.Fatalf("Modify: %v", err)
	}
	if got := mustRead(t, w.srv, v2); !bytes.Equal(got, []byte("hello bullet world")) {
		t.Fatalf("v2 = %q", got)
	}
	// The original is untouched (immutability).
	if got := mustRead(t, w.srv, v1); !bytes.Equal(got, []byte("hello horrid world")) {
		t.Fatalf("v1 mutated: %q", got)
	}
	if v1.Object == v2.Object {
		t.Fatal("modify reused the object number")
	}
}

func TestModifyGrowAndShrink(t *testing.T) {
	w := newWorld(t, 2, Options{})
	v1 := mustCreate(t, w.srv, []byte("abcdef"), 2)

	grown, err := w.srv.Modify(v1, 8, []byte("XY"), 10, 2)
	if err != nil {
		t.Fatalf("Modify(grow): %v", err)
	}
	want := []byte("abcdef\x00\x00XY")
	if got := mustRead(t, w.srv, grown); !bytes.Equal(got, want) {
		t.Fatalf("grown = %q, want %q", got, want)
	}

	shrunk, err := w.srv.Modify(v1, 0, nil, 3, 2)
	if err != nil {
		t.Fatalf("Modify(shrink): %v", err)
	}
	if got := mustRead(t, w.srv, shrunk); !bytes.Equal(got, []byte("abc")) {
		t.Fatalf("shrunk = %q", got)
	}
}

func TestModifyValidation(t *testing.T) {
	w := newWorld(t, 2, Options{})
	v1 := mustCreate(t, w.srv, []byte("abc"), 2)
	if _, err := w.srv.Modify(v1, -1, []byte("x"), -1, 2); !errors.Is(err, ErrBadOffset) {
		t.Fatalf("negative offset err = %v", err)
	}
	if _, err := w.srv.Modify(v1, 5, []byte("xyz"), 6, 2); !errors.Is(err, ErrBadOffset) {
		t.Fatalf("splice past size err = %v", err)
	}
	readOnly, err := capability.Restrict(v1, RightRead)
	if err != nil {
		t.Fatalf("Restrict: %v", err)
	}
	if _, err := w.srv.Modify(readOnly, 0, []byte("x"), -1, 2); !errors.Is(err, capability.ErrBadRights) {
		t.Fatalf("modify without right err = %v", err)
	}
}

func TestAppend(t *testing.T) {
	w := newWorld(t, 2, Options{})
	v1 := mustCreate(t, w.srv, []byte("log line 1\n"), 2)
	v2, err := w.srv.Append(v1, []byte("log line 2\n"), 2)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if got := mustRead(t, w.srv, v2); !bytes.Equal(got, []byte("log line 1\nlog line 2\n")) {
		t.Fatalf("appended = %q", got)
	}
}

func TestReadRange(t *testing.T) {
	w := newWorld(t, 2, Options{})
	c := mustCreate(t, w.srv, []byte("0123456789"), 2)
	cases := []struct {
		off, n int64
		want   string
	}{
		{0, 4, "0123"},
		{5, 3, "567"},
		{8, 100, "89"}, // clipped at EOF
		{10, 5, ""},    // read at EOF
	}
	for _, cse := range cases {
		got, err := w.srv.ReadRange(c, cse.off, cse.n)
		if err != nil {
			t.Fatalf("ReadRange(%d,%d): %v", cse.off, cse.n, err)
		}
		if string(got) != cse.want {
			t.Fatalf("ReadRange(%d,%d) = %q, want %q", cse.off, cse.n, got, cse.want)
		}
	}
	if _, err := w.srv.ReadRange(c, 11, 1); !errors.Is(err, ErrBadOffset) {
		t.Fatalf("past-EOF offset err = %v", err)
	}
	if _, err := w.srv.ReadRange(c, -1, 1); !errors.Is(err, ErrBadOffset) {
		t.Fatalf("negative offset err = %v", err)
	}
}

func TestStatsAccounting(t *testing.T) {
	w := newWorld(t, 2, Options{})
	c := mustCreate(t, w.srv, make([]byte, 100), 2)
	mustRead(t, w.srv, c)
	mustRead(t, w.srv, c)
	if err := w.srv.Delete(c); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	st := w.srv.Stats()
	if st.Creates != 1 || st.Reads != 2 || st.Deletes != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BytesIn != 100 || st.BytesOut != 200 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestManySmallFiles(t *testing.T) {
	w := newWorld(t, 2, Options{})
	caps := make(map[int]capability.Capability)
	for i := 0; i < 300; i++ {
		caps[i] = mustCreate(t, w.srv, []byte{byte(i), byte(i >> 8)}, 2)
	}
	for i, c := range caps {
		got := mustRead(t, w.srv, c)
		if !bytes.Equal(got, []byte{byte(i), byte(i >> 8)}) {
			t.Fatalf("file %d corrupted", i)
		}
	}
	if w.srv.Live() != 300 {
		t.Fatalf("Live = %d, want 300", w.srv.Live())
	}
}

func TestConcurrentOperations(t *testing.T) {
	w := newWorld(t, 2, Options{})
	const workers = 8
	done := make(chan error, workers)
	for g := 0; g < workers; g++ {
		go func(id int) {
			for i := 0; i < 30; i++ {
				data := bytes.Repeat([]byte{byte(id)}, (id+1)*50)
				c, err := w.srv.Create(data, 2)
				if err != nil {
					done <- err
					return
				}
				got, err := w.srv.Read(c)
				if err != nil {
					done <- err
					return
				}
				if !bytes.Equal(got, data) {
					done <- errors.New("read returned wrong data")
					return
				}
				if err := w.srv.Delete(c); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < workers; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if w.srv.Live() != 0 {
		t.Fatalf("Live = %d after balanced create/delete, want 0", w.srv.Live())
	}
}

// Property: any create/read/delete interleaving keeps every live file
// intact, byte for byte, with or without restarts.
func TestQuickEngineIntegrity(t *testing.T) {
	type op struct {
		Kind    uint8 // 0 create, 1 delete, 2 read, 3 restart
		Size    uint16
		Victim  uint8
		PFactor uint8
	}
	f := func(ops []op) bool {
		devs := make([]disk.Device, 2)
		for i := range devs {
			mem, err := disk.NewMem(512, 2048)
			if err != nil {
				return false
			}
			devs[i] = mem
		}
		set, err := disk.NewReplicaSet(devs...)
		if err != nil {
			return false
		}
		if err := Format(set, 200); err != nil {
			return false
		}
		port := capability.PortFromString("quick")
		srv, err := New(set, Options{Port: port, CacheBytes: 1 << 18})
		if err != nil {
			return false
		}
		type file struct {
			cap  capability.Capability
			data []byte
		}
		var live []file
		seq := 0
		for _, o := range ops {
			switch o.Kind % 4 {
			case 0:
				size := int(o.Size) % 3000
				data := bytes.Repeat([]byte{byte(seq + 1)}, size)
				seq++
				c, err := srv.Create(data, int(o.PFactor)%3)
				if errors.Is(err, ErrDiskFull) || errors.Is(err, ErrTooLarge) {
					continue
				}
				if err != nil {
					return false
				}
				live = append(live, file{cap: c, data: data})
			case 1:
				if len(live) == 0 {
					continue
				}
				i := int(o.Victim) % len(live)
				if err := srv.Delete(live[i].cap); err != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
			case 2:
				if len(live) == 0 {
					continue
				}
				i := int(o.Victim) % len(live)
				got, err := srv.Read(live[i].cap)
				if err != nil || !bytes.Equal(got, live[i].data) {
					return false
				}
			case 3:
				srv.Sync()
				srv, err = New(set, Options{Port: port, CacheBytes: 1 << 18})
				if err != nil {
					return false
				}
			}
		}
		srv.Sync()
		for _, f := range live {
			got, err := srv.Read(f.cap)
			if err != nil || !bytes.Equal(got, f.data) {
				return false
			}
		}
		return srv.Live() == len(live)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMetricsRegistryAndStatsSnapshot(t *testing.T) {
	w := newWorld(t, 2, Options{})
	reg := w.srv.Metrics()
	if reg == nil {
		t.Fatal("Metrics() returned nil")
	}

	c, err := w.srv.Create([]byte("measured"), 2)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := w.srv.Read(c); err != nil {
		t.Fatalf("Read: %v", err)
	}

	snap, err := w.srv.StatsSnapshot(c)
	if err != nil {
		t.Fatalf("StatsSnapshot: %v", err)
	}
	if n := snap.Counters["bullet.creates"]; n != 1 {
		t.Errorf("bullet.creates = %d, want 1", n)
	}
	if n := snap.Counters["bullet.reads"]; n != 1 {
		t.Errorf("bullet.reads = %d, want 1", n)
	}
	if n := snap.Gauges["bullet.live_files"]; n != 1 {
		t.Errorf("bullet.live_files = %d, want 1", n)
	}
	if h, ok := snap.Histograms["bullet.commit_ns.p2"]; !ok || h.Count != 1 {
		t.Errorf("bullet.commit_ns.p2 = %+v, want count 1", h)
	}

	// The legacy Stats view is synthesized from the same registry.
	legacy := w.srv.Stats()
	if legacy.Creates != 1 || legacy.Reads != 1 || legacy.BytesIn != 8 {
		t.Errorf("legacy Stats = %+v, want Creates 1 Reads 1 BytesIn 8", legacy)
	}

	// StatsSnapshot is capability-checked: no read right, no stats.
	delOnly, err := capability.Restrict(c, capability.RightDelete)
	if err != nil {
		t.Fatalf("Restrict: %v", err)
	}
	if _, err := w.srv.StatsSnapshot(delOnly); !errors.Is(err, capability.ErrBadRights) {
		t.Errorf("StatsSnapshot without read right: err = %v, want ErrBadRights", err)
	}
}

func TestSharedRegistryOption(t *testing.T) {
	reg := stats.NewRegistry()
	w := newWorld(t, 2, Options{Metrics: reg})
	if w.srv.Metrics() != reg {
		t.Fatal("engine did not adopt the supplied registry")
	}
	if _, err := w.srv.Create([]byte("x"), 1); err != nil {
		t.Fatalf("Create: %v", err)
	}
	if n := reg.Snapshot().Counters["bullet.creates"]; n != 1 {
		t.Errorf("shared registry bullet.creates = %d, want 1", n)
	}
}

func TestCompactionMetrics(t *testing.T) {
	w := newWorld(t, 2, Options{})
	// Lay down files, delete one to punch a hole, compact.
	var caps []capability.Capability
	for i := 0; i < 3; i++ {
		c, err := w.srv.Create(bytes.Repeat([]byte{byte(i)}, 2048), 2)
		if err != nil {
			t.Fatalf("Create %d: %v", i, err)
		}
		caps = append(caps, c)
	}
	if err := w.srv.Delete(caps[0]); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := w.srv.CompactDisk(); err != nil {
		t.Fatalf("CompactDisk: %v", err)
	}
	snap := w.srv.Metrics().Snapshot()
	if n := snap.Counters["bullet.disk_compactions"]; n != 1 {
		t.Errorf("bullet.disk_compactions = %d, want 1", n)
	}
	if n := snap.Counters["bullet.compaction_bytes_moved"]; n <= 0 {
		t.Errorf("bullet.compaction_bytes_moved = %d, want > 0", n)
	}
}
