package bullet

import (
	"bytes"
	"testing"

	"bulletfs/internal/disk"
	"bulletfs/internal/trace"
)

// TestTracedCachedReadAddsNoAllocs proves the tentpole's zero-cost
// claim at the engine level: a warm (cache-hit) read with a live span
// context allocates exactly as much as an untraced one — the span arena,
// the recorder ring and the ctx pool never touch the heap on the fast
// path. The CI workflow runs this under -race too.
func TestTracedCachedReadAddsNoAllocs(t *testing.T) {
	w := newWorld(t, 2, Options{})
	payload := bytes.Repeat([]byte{0x42}, 4<<10)
	c := mustCreate(t, w.srv, payload, 2)
	if !bytes.Equal(mustRead(t, w.srv, c), payload) {
		t.Fatal("warm-up read returned wrong bytes")
	}

	base := testing.AllocsPerRun(200, func() {
		if _, err := w.srv.Read(c); err != nil {
			t.Fatal(err)
		}
	})

	rec := trace.NewRecorder(trace.WithCapacity(8, 8))
	defer rec.Close()
	tc := rec.AcquireCtx()
	defer rec.ReleaseCtx(tc)
	traced := testing.AllocsPerRun(200, func() {
		tc.Reset(rec.NextLocalID())
		root := tc.Begin(nil, trace.LayerRPC, trace.OpRequest)
		if _, err := w.srv.ReadTraced(tc, root, c); err != nil {
			t.Fatal(err)
		}
		tc.End(root)
		tc.Finish()
	})

	if traced > base {
		t.Fatalf("traced cached read allocates %v/op vs %v/op untraced — tracing must be alloc-free on the fast path", traced, base)
	}
}

// BenchmarkTracedCachedRead reports the cached-read fast path with
// tracing active end to end (span arena + flight-recorder commit), for
// eyeballing against BenchmarkPaperF2Read's warm numbers.
func BenchmarkTracedCachedRead(b *testing.B) {
	devs := make([]disk.Device, 2)
	for i := range devs {
		mem, err := disk.NewMem(512, 4096)
		if err != nil {
			b.Fatal(err)
		}
		devs[i] = mem
	}
	set, err := disk.NewReplicaSet(devs...)
	if err != nil {
		b.Fatal(err)
	}
	if err := Format(set, 500); err != nil {
		b.Fatal(err)
	}
	srv, err := New(set, Options{CacheBytes: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Sync() //nolint:errcheck // bench cleanup
	payload := bytes.Repeat([]byte{0x42}, 4<<10)
	c, err := srv.Create(payload, 2)
	if err != nil {
		b.Fatal(err)
	}
	rec := trace.NewRecorder(trace.WithCapacity(64, 8))
	defer rec.Close()
	tc := rec.AcquireCtx()
	defer rec.ReleaseCtx(tc)

	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tc.Reset(rec.NextLocalID())
		root := tc.Begin(nil, trace.LayerRPC, trace.OpRequest)
		if _, err := srv.ReadTraced(tc, root, c); err != nil {
			b.Fatal(err)
		}
		tc.End(root)
		tc.Finish()
	}
}
