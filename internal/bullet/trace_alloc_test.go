package bullet

import (
	"bytes"
	"testing"
	"time"

	"bulletfs/internal/disk"
	"bulletfs/internal/stats"
	"bulletfs/internal/trace"
)

// TestTracedCachedReadAddsNoAllocs proves the tentpole's zero-cost
// claim at the engine level: a warm (cache-hit) read with a live span
// context allocates exactly as much as an untraced one — the span arena,
// the recorder ring and the ctx pool never touch the heap on the fast
// path. The CI workflow runs this under -race too.
func TestTracedCachedReadAddsNoAllocs(t *testing.T) {
	w := newWorld(t, 2, Options{})
	payload := bytes.Repeat([]byte{0x42}, 4<<10)
	c := mustCreate(t, w.srv, payload, 2)
	if !bytes.Equal(mustRead(t, w.srv, c), payload) {
		t.Fatal("warm-up read returned wrong bytes")
	}

	base := testing.AllocsPerRun(200, func() {
		if _, err := w.srv.Read(c); err != nil {
			t.Fatal(err)
		}
	})

	rec := trace.NewRecorder(trace.WithCapacity(8, 8))
	defer rec.Close()
	tc := rec.AcquireCtx()
	defer rec.ReleaseCtx(tc)
	traced := testing.AllocsPerRun(200, func() {
		tc.Reset(rec.NextLocalID())
		root := tc.Begin(nil, trace.LayerRPC, trace.OpRequest)
		if _, err := w.srv.ReadTraced(tc, root, c); err != nil {
			t.Fatal(err)
		}
		tc.End(root)
		tc.Finish()
	})

	if traced > base {
		t.Fatalf("traced cached read allocates %v/op vs %v/op untraced — tracing must be alloc-free on the fast path", traced, base)
	}
}

// TestCachedReadAllocFreeWithCollector extends the gate to the
// telemetry tentpole: a running collector (sampling the registry every
// millisecond, with exemplars enabled on a latency histogram) must not
// put allocations back on the warm read path — the hot path only
// touches atomics, and exemplar recording is a seqlock slot write.
func TestCachedReadAllocFreeWithCollector(t *testing.T) {
	w := newWorld(t, 2, Options{})
	payload := bytes.Repeat([]byte{0x42}, 4<<10)
	c := mustCreate(t, w.srv, payload, 2)
	if !bytes.Equal(mustRead(t, w.srv, c), payload) {
		t.Fatal("warm-up read returned wrong bytes")
	}

	// Baseline: the warm read alone (it copies the payload out, so it is
	// not absolutely zero — the gate, like the tracing one above, is that
	// telemetry adds nothing on top).
	base := testing.AllocsPerRun(500, func() {
		if _, err := w.srv.Read(c); err != nil {
			t.Fatal(err)
		}
	})

	// Long interval: the collector is live (Start'ed, registered,
	// subscribable) but sampling is driven by explicit Ticks bracketing
	// the measured loop — AllocsPerRun counts process-global mallocs, so
	// a concurrently ticking goroutine would bill its own (deliberately
	// off-hot-path) snapshot allocations to the read loop.
	coll := stats.NewCollector(w.srv.Metrics(), time.Hour, 16)
	coll.Start()
	defer coll.Close()
	// The exemplar-enabled histogram the RPC layer would own, observed
	// from the loop the way rpc.metrics does, with a traced ID each run.
	lat := w.srv.Metrics().HistogramExemplars("rpc.read.latency_ns", stats.DefaultLatencyBounds, 0)

	at := time.Unix(1_700_000_000, 0)
	coll.Tick(at)
	withTelemetry := testing.AllocsPerRun(500, func() {
		if _, err := w.srv.Read(c); err != nil {
			t.Fatal(err)
		}
		lat.ObserveTraced(12345, 0xabcdef)
	})
	coll.Tick(at.Add(time.Second))
	if withTelemetry > base {
		t.Fatalf("cached read allocates %v/op with the collector + exemplars vs %v/op bare — the telemetry path must stay off the hot path", withTelemetry, base)
	}
	// The bracketing ticks really sampled the loop's traffic.
	u, ok := coll.Latest()
	if !ok || u.Histograms["rpc.read.latency_ns"].Count == 0 {
		t.Fatalf("collector window missed the measured reads: %+v", u)
	}
}

// BenchmarkTracedCachedRead reports the cached-read fast path with
// tracing active end to end (span arena + flight-recorder commit), for
// eyeballing against BenchmarkPaperF2Read's warm numbers.
func BenchmarkTracedCachedRead(b *testing.B) {
	devs := make([]disk.Device, 2)
	for i := range devs {
		mem, err := disk.NewMem(512, 4096)
		if err != nil {
			b.Fatal(err)
		}
		devs[i] = mem
	}
	set, err := disk.NewReplicaSet(devs...)
	if err != nil {
		b.Fatal(err)
	}
	if err := Format(set, 500); err != nil {
		b.Fatal(err)
	}
	srv, err := New(set, Options{CacheBytes: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Sync() //nolint:errcheck // bench cleanup
	payload := bytes.Repeat([]byte{0x42}, 4<<10)
	c, err := srv.Create(payload, 2)
	if err != nil {
		b.Fatal(err)
	}
	rec := trace.NewRecorder(trace.WithCapacity(64, 8))
	defer rec.Close()
	tc := rec.AcquireCtx()
	defer rec.ReleaseCtx(tc)

	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tc.Reset(rec.NextLocalID())
		root := tc.Begin(nil, trace.LayerRPC, trace.OpRequest)
		if _, err := srv.ReadTraced(tc, root, c); err != nil {
			b.Fatal(err)
		}
		tc.End(root)
		tc.Finish()
	}
}
