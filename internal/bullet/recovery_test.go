package bullet

import (
	"bytes"
	"testing"

	"bulletfs/internal/capability"
)

// These tests exercise the §3 reliability story: "The most vulnerable
// component of the server is the disk, but because of its replication,
// the complete file server is highly reliable."

func TestTornInodeWriteSurvivedByReplica(t *testing.T) {
	w := newWorld(t, 2, Options{})
	// A few stable files first.
	var caps []capability.Capability
	var datas [][]byte
	for i := 0; i < 5; i++ {
		d := bytes.Repeat([]byte{byte(i + 1)}, 700)
		caps = append(caps, mustCreate(t, w.srv, d, 2))
		datas = append(datas, d)
	}

	// Disk 0 tears its next write (power loss mid-sector) during the next
	// create. The engine must complete the create on the survivor.
	w.faulty[0].TearNextWrite()
	crashData := []byte("written during the power failure")
	crashCap, err := w.srv.Create(crashData, 2)
	if err != nil {
		t.Fatalf("Create during torn write: %v", err)
	}
	if w.set.AliveCount() != 1 {
		t.Fatalf("alive = %d, want 1", w.set.AliveCount())
	}

	// Restart from the surviving replica only: everything present.
	srv2, err := New(w.set, Options{Port: w.srv.Port(), CacheBytes: 1 << 20})
	if err != nil {
		t.Fatalf("restart on survivor: %v", err)
	}
	for i, c := range caps {
		if got := mustRead(t, srv2, c); !bytes.Equal(got, datas[i]) {
			t.Fatalf("file %d corrupted", i)
		}
	}
	if got := mustRead(t, srv2, crashCap); !bytes.Equal(got, crashData) {
		t.Fatalf("crash-time file = %q", got)
	}
}

func TestStartupScanZeroesGarbageInode(t *testing.T) {
	w := newWorld(t, 2, Options{})
	c1 := mustCreate(t, w.srv, []byte("good file"), 2)
	w.srv.Sync()

	// Corrupt one on-disk inode on both replicas: a random-looking record
	// pointing past the data area (simulating a torn multi-sector inode
	// block that left garbage).
	garbage := make([]byte, 16)
	for i := range garbage {
		garbage[i] = 0xEE
	}
	// Inode slot 5 lives in control block 0 at offset 5*16.
	for i := 0; i < 2; i++ {
		if err := w.set.Device(i).WriteAt(garbage, 5*16); err != nil {
			t.Fatalf("corrupting replica %d: %v", i, err)
		}
	}

	srv2, err := New(w.set, Options{Port: w.srv.Port(), CacheBytes: 1 << 20})
	if err != nil {
		t.Fatalf("restart over garbage inode: %v", err)
	}
	// The good file survives; the garbage inode was zeroed, so creating
	// new files reuses it safely.
	if got := mustRead(t, srv2, c1); !bytes.Equal(got, []byte("good file")) {
		t.Fatal("good file lost to the scan")
	}
	c2 := mustCreate(t, srv2, []byte("new after scan"), 2)
	if got := mustRead(t, srv2, c2); !bytes.Equal(got, []byte("new after scan")) {
		t.Fatal("new file corrupted")
	}
	// The zeroing was persisted: a third restart reports a clean table.
	srv3, err := New(w.set, Options{Port: w.srv.Port(), CacheBytes: 1 << 20})
	if err != nil {
		t.Fatalf("third restart: %v", err)
	}
	if srv3.Live() != 2 {
		t.Fatalf("Live = %d, want 2", srv3.Live())
	}
}

func TestFullRecoveryCycle(t *testing.T) {
	// The complete §3 story: disk dies -> degraded service -> repair ->
	// whole-disk copy -> the recovered disk can carry the service alone.
	w := newWorld(t, 2, Options{})
	before := mustCreate(t, w.srv, []byte("pre-failure"), 2)

	w.faulty[0].Fault()
	during := mustCreate(t, w.srv, []byte("degraded"), 1)
	// The write-through fans out to both replicas in parallel; a P-FACTOR 1
	// create may return off the healthy disk before the dead one's write
	// fails and demotes it. Settle the fanout before checking.
	w.srv.Sync()
	if w.set.Main() != 1 {
		t.Fatalf("main = %d, want failover to 1", w.set.Main())
	}

	w.faulty[0].Heal()
	if err := w.set.Recover(0); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	after := mustCreate(t, w.srv, []byte("post-recovery"), 2)

	// Kill the disk that carried the degraded period; the recovered one
	// must hold everything.
	w.faulty[1].Fault()
	srv2, err := New(w.set, Options{Port: w.srv.Port(), CacheBytes: 1 << 20})
	if err != nil {
		t.Fatalf("restart on recovered disk: %v", err)
	}
	for _, tc := range []struct {
		cap  capability.Capability
		want string
	}{
		{before, "pre-failure"},
		{during, "degraded"},
		{after, "post-recovery"},
	} {
		if got := mustRead(t, srv2, tc.cap); !bytes.Equal(got, []byte(tc.want)) {
			t.Fatalf("got %q, want %q", got, tc.want)
		}
	}
}

func TestPFactorOneSurvivesImmediateMainLoss(t *testing.T) {
	// PF=1 means "one disk has it". If that disk then dies, the
	// background write to the second disk (already drained) must have
	// preserved the file.
	w := newWorld(t, 2, Options{})
	c := mustCreate(t, w.srv, []byte("one disk is enough"), 1)
	w.srv.Sync() // drain the background write to disk 1
	w.faulty[0].Fault()
	srv2, err := New(w.set, Options{Port: w.srv.Port(), CacheBytes: 1 << 20})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	if got := mustRead(t, srv2, c); !bytes.Equal(got, []byte("one disk is enough")) {
		t.Fatalf("got %q", got)
	}
}

func TestWriteOnSurvivorWhenSecondDiskDiesMidCreate(t *testing.T) {
	w := newWorld(t, 2, Options{})
	// Replica 1 accepts its next 2 writes then dies (i.e., mid-sequence
	// during the 2-write create: data then inode).
	w.faulty[1].FailAfterWrites(1)
	c, err := w.srv.Create(bytes.Repeat([]byte{9}, 900), 2)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	// Replica 1 holds the data but not the inode: it must be considered
	// dead, and the engine's file intact on replica 0.
	if w.set.Alive(1) {
		t.Fatal("half-written replica still alive")
	}
	if got := mustRead(t, w.srv, c); !bytes.Equal(got, bytes.Repeat([]byte{9}, 900)) {
		t.Fatal("file corrupted")
	}
	// Restart from replica 0 alone.
	srv2, err := New(w.set, Options{Port: w.srv.Port(), CacheBytes: 1 << 20})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	if srv2.Live() != 1 {
		t.Fatalf("Live = %d, want 1", srv2.Live())
	}
}
