package bullet_test

import (
	"fmt"
	"log"

	"bulletfs/internal/bullet"
	"bulletfs/internal/capability"
	"bulletfs/internal/disk"
)

// The whole §2.2 interface against an in-memory two-replica engine:
// BULLET.CREATE with a paranoia factor, BULLET.SIZE, BULLET.READ,
// BULLET.DELETE — and the immutability in between.
func Example() {
	d0, _ := disk.NewMem(512, 4096)
	d1, _ := disk.NewMem(512, 4096)
	replicas, _ := disk.NewReplicaSet(d0, d1)
	if err := bullet.Format(replicas, 100); err != nil {
		log.Fatal(err)
	}
	srv, err := bullet.New(replicas, bullet.Options{CacheBytes: 1 << 20})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Sync()

	cap1, _ := srv.Create([]byte("an immutable file"), 2) // on both disks
	size, _ := srv.Size(cap1)
	data, _ := srv.Read(cap1)
	fmt.Printf("%d bytes: %s\n", size, data)

	// There is no write: updating means deriving a new file (§5).
	cap2, _ := srv.Append(cap1, []byte(", new version"), 2)
	v2, _ := srv.Read(cap2)
	fmt.Println(string(v2))

	_ = srv.Delete(cap1)
	if _, err := srv.Read(cap1); err != nil {
		fmt.Println("v1 deleted; v2 unaffected")
	}
	_ = capability.RightsAll // see package capability for protection
	// Output:
	// 17 bytes: an immutable file
	// an immutable file, new version
	// v1 deleted; v2 unaffected
}
