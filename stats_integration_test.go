package bulletfs_test

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"bulletfs/internal/bullet"
	"bulletfs/internal/bulletsvc"
	"bulletfs/internal/capability"
	"bulletfs/internal/client"
	"bulletfs/internal/disk"
	"bulletfs/internal/rpc"
)

// statsWorld is a Bullet server with a deliberately tiny RAM cache,
// served through the full svc/client stack (client stubs -> RPC mux ->
// service handler -> engine), so the test can drive real cache evictions
// and read the metrics back over the wire.
type statsWorld struct {
	engine *bullet.Server
	cl     *client.Client
}

func newStatsWorld(t *testing.T, cacheBytes int64) *statsWorld {
	t.Helper()
	var devs []disk.Device
	for i := 0; i < 2; i++ {
		mem, err := disk.NewMem(512, (8<<20)/512)
		if err != nil {
			t.Fatalf("NewMem: %v", err)
		}
		devs = append(devs, mem)
	}
	set, err := disk.NewReplicaSet(devs...)
	if err != nil {
		t.Fatalf("NewReplicaSet: %v", err)
	}
	if err := bullet.Format(set, 100); err != nil {
		t.Fatalf("Format: %v", err)
	}
	engine, err := bullet.New(set, bullet.Options{CacheBytes: cacheBytes})
	if err != nil {
		t.Fatalf("bullet.New: %v", err)
	}
	t.Cleanup(func() { engine.Close() }) //nolint:errcheck // test cleanup
	mux := rpc.NewMux(0)
	mux.AttachMetrics(engine.Metrics(), bulletsvc.CommandName)
	bulletsvc.New(engine).Register(mux)
	return &statsWorld{engine: engine, cl: client.New(&rpc.LocalID{Mux: mux})}
}

// TestStatsAcrossReadWarmRead drives the canonical observability
// scenario: create two files that cannot share the cache, so reading the
// first is a miss (fault from disk) and re-reading it is a hit — and
// asserts the counters seen through the STATS RPC move accordingly.
func TestStatsAcrossReadWarmRead(t *testing.T) {
	// 64 KB arena; two 40 KB files can never be resident together.
	w := newStatsWorld(t, 64<<10)
	port := w.engine.Port()

	payloadA := bytes.Repeat([]byte{0xA5}, 40<<10)
	capA, err := w.cl.Create(port, payloadA, 2)
	if err != nil {
		t.Fatalf("Create A: %v", err)
	}
	if _, err := w.cl.Create(port, bytes.Repeat([]byte{0x5A}, 40<<10), 2); err != nil {
		t.Fatalf("Create B: %v", err)
	}

	snap0, err := w.cl.Stats(capA)
	if err != nil {
		t.Fatalf("Stats before reads: %v", err)
	}
	if snap0.Gauges["cache.evictions"] == 0 {
		t.Fatalf("creating B should have evicted A; evictions = %d", snap0.Gauges["cache.evictions"])
	}

	// Cold read: A was evicted, so this faults from disk.
	got, err := w.cl.Read(capA)
	if err != nil {
		t.Fatalf("cold Read A: %v", err)
	}
	if !bytes.Equal(got, payloadA) {
		t.Fatal("cold read returned wrong bytes")
	}
	snap1, err := w.cl.Stats(capA)
	if err != nil {
		t.Fatalf("Stats after cold read: %v", err)
	}
	if d := snap1.Gauges["cache.misses"] - snap0.Gauges["cache.misses"]; d != 1 {
		t.Errorf("cold read: want 1 new cache miss, got %d", d)
	}

	// Warm read: A is resident again; no new miss, one new hit.
	if _, err := w.cl.Read(capA); err != nil {
		t.Fatalf("warm Read A: %v", err)
	}
	snap2, err := w.cl.Stats(capA)
	if err != nil {
		t.Fatalf("Stats after warm read: %v", err)
	}
	if d := snap2.Gauges["cache.hits"] - snap1.Gauges["cache.hits"]; d != 1 {
		t.Errorf("warm read: want 1 new cache hit, got %d", d)
	}
	if d := snap2.Gauges["cache.misses"] - snap1.Gauges["cache.misses"]; d != 0 {
		t.Errorf("warm read: want no new cache miss, got %d", d)
	}

	// The RPC layer saw both reads and every stats query.
	if n := snap2.Counters["rpc.read.requests"]; n != 2 {
		t.Errorf("rpc.read.requests = %d, want 2", n)
	}
	if n := snap2.Counters["bullet.reads"]; n != 2 {
		t.Errorf("bullet.reads = %d, want 2", n)
	}
	if n := snap2.Counters["rpc.stats.requests"]; n < 2 {
		t.Errorf("rpc.stats.requests = %d, want >= 2", n)
	}
	if h, ok := snap2.Histograms["rpc.read.latency_ns"]; !ok || h.Count != 2 {
		t.Errorf("rpc.read.latency_ns histogram: %+v, want count 2", h)
	}
	// The engine timed both commits (p-factor 2).
	if h, ok := snap2.Histograms["bullet.commit_ns.p2"]; !ok || h.Count != 2 {
		t.Errorf("bullet.commit_ns.p2 histogram: %+v, want count 2", h)
	}
}

// TestStatsRequiresReadRight asserts the STATS op is capability-checked:
// a capability restricted away from the read right is refused with
// ErrBadRights, and a garbage check field with ErrBadCheck.
func TestStatsRequiresReadRight(t *testing.T) {
	w := newStatsWorld(t, 1<<20)
	capA, err := w.cl.Create(w.engine.Port(), []byte("observable"), 2)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}

	delOnly, err := capability.Restrict(capA, capability.RightDelete)
	if err != nil {
		t.Fatalf("Restrict: %v", err)
	}
	if _, err := w.cl.Stats(delOnly); !errors.Is(err, capability.ErrBadRights) {
		t.Errorf("Stats with delete-only capability: err = %v, want ErrBadRights", err)
	}

	forged := capA
	forged.Check[0] ^= 0xFF
	if _, err := w.cl.Stats(forged); !errors.Is(err, capability.ErrBadCheck) {
		t.Errorf("Stats with forged check: err = %v, want ErrBadCheck", err)
	}

	if _, err := w.cl.Stats(capA); err != nil {
		t.Errorf("Stats with full capability: %v", err)
	}
}

// TestClientTransportErrorsAreTagged asserts transport-level failures are
// distinguishable from server rejections: errors.Is(err, ErrTransport).
func TestClientTransportErrorsAreTagged(t *testing.T) {
	port := capability.PortFromString("unreachable")
	tr := rpc.NewTCPTransport(rpc.StaticResolver(map[capability.Port]string{
		port: "127.0.0.1:1", // nothing listens on port 1
	}), 2*time.Second)
	defer tr.Close() //nolint:errcheck // test cleanup
	cl := client.New(tr)

	_, err := cl.Create(port, []byte("x"), 0)
	if !errors.Is(err, client.ErrTransport) {
		t.Errorf("dial to dead address: err = %v, want ErrTransport", err)
	}

	// A server-side rejection must NOT carry the transport tag.
	w := newStatsWorld(t, 1<<20)
	capA, err := w.cl.Create(w.engine.Port(), []byte("y"), 0)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	forged := capA
	forged.Check[0] ^= 0xFF
	_, err = w.cl.Read(forged)
	if errors.Is(err, client.ErrTransport) {
		t.Errorf("capability rejection wrongly tagged as transport failure: %v", err)
	}
	if !errors.Is(err, capability.ErrBadCheck) {
		t.Errorf("capability rejection: err = %v, want ErrBadCheck", err)
	}
}
