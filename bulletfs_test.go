package bulletfs_test

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"bulletfs"
	"bulletfs/internal/capability"
)

func TestStackRoundTrip(t *testing.T) {
	stack, err := bulletfs.NewStack()
	if err != nil {
		t.Fatalf("NewStack: %v", err)
	}
	defer stack.Close() //nolint:errcheck // test cleanup

	data := []byte("through the facade")
	c, err := stack.Files.Create(stack.FilePort, data, 2)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	got, err := stack.Files.Read(c)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("Read = %q, %v", got, err)
	}

	// Directory + versioning through the facade.
	if err := stack.Dirs.Enter(stack.Root, "f", c); err != nil {
		t.Fatalf("Enter: %v", err)
	}
	found, err := stack.Dirs.Lookup(stack.Root, "f")
	if err != nil || found != c {
		t.Fatalf("Lookup = %v, %v", found, err)
	}

	// Logs through the facade.
	lg, err := stack.Logs.CreateLog(stack.LogServer.Port())
	if err != nil {
		t.Fatalf("CreateLog: %v", err)
	}
	if _, err := stack.Logs.Append(lg, []byte("entry\n")); err != nil {
		t.Fatalf("Append: %v", err)
	}

	// UNIX emulation through the facade.
	fs, err := stack.FS()
	if err != nil {
		t.Fatalf("FS: %v", err)
	}
	if err := fs.WriteFile("dir/file.txt", []byte("posix-ish")); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	back, err := fs.ReadFile("dir/file.txt")
	if err != nil || string(back) != "posix-ish" {
		t.Fatalf("ReadFile = %q, %v", back, err)
	}
}

func TestCapabilityHelpers(t *testing.T) {
	stack, err := bulletfs.NewStack()
	if err != nil {
		t.Fatalf("NewStack: %v", err)
	}
	defer stack.Close() //nolint:errcheck // test cleanup

	c, err := stack.Files.Create(stack.FilePort, []byte("x"), 1)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	ro, err := bulletfs.Restrict(c, bulletfs.RightRead)
	if err != nil {
		t.Fatalf("Restrict: %v", err)
	}
	if err := stack.Files.Delete(ro); !errors.Is(err, capability.ErrBadRights) {
		t.Fatalf("restricted delete err = %v", err)
	}
	parsed, err := bulletfs.ParseCapability(c.String())
	if err != nil || parsed != c {
		t.Fatalf("ParseCapability round trip: %v, %v", parsed, err)
	}
	if bulletfs.PortFromName("a") == bulletfs.PortFromName("b") {
		t.Fatal("distinct names share a port")
	}
}

func TestStoreOverTCPAndFileDisks(t *testing.T) {
	dir := t.TempDir()
	store, err := bulletfs.NewStore(bulletfs.StoreConfig{
		ReplicaPaths: []string{filepath.Join(dir, "r0.img"), filepath.Join(dir, "r1.img")},
		Format:       true,
		DiskMB:       8,
		PortName:     "facade-test",
	})
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	addr, err := store.ServeTCP("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ServeTCP: %v", err)
	}

	cl, port, err := bulletfs.Dial(addr, "facade-test")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	data := bytes.Repeat([]byte{0x5A}, 100_000)
	c, err := cl.Create(port, data, 2)
	if err != nil {
		t.Fatalf("Create over TCP: %v", err)
	}
	got, err := cl.Read(c)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("Read over TCP corrupted (%d bytes), %v", len(got), err)
	}
	if err := store.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen the same images: the file survives on disk.
	store2, err := bulletfs.NewStore(bulletfs.StoreConfig{
		ReplicaPaths: []string{filepath.Join(dir, "r0.img"), filepath.Join(dir, "r1.img")},
		PortName:     "facade-test",
	})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer store2.Close() //nolint:errcheck // test cleanup
	addr2, err := store2.ServeTCP("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ServeTCP: %v", err)
	}
	cl2, port2, err := bulletfs.Dial(addr2, "facade-test")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	got, err = cl2.Read(c)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("Read after restart corrupted, %v", err)
	}
	_ = port2
}

func ExampleStack() {
	stack, err := bulletfs.NewStack()
	if err != nil {
		panic(err)
	}
	defer stack.Close() //nolint:errcheck // example cleanup

	cap1, _ := stack.Files.Create(stack.FilePort, []byte("immutable bytes"), 2)
	data, _ := stack.Files.Read(cap1)
	fmt.Println(string(data))
	// Output: immutable bytes
}
