// Package bulletfs is a Go reproduction of the Bullet file server — the
// high-performance file server of the Amoeba distributed operating system
// (van Renesse, Tanenbaum, Wilschut, "The Design of a High-Performance
// File Server", ICDCS 1989).
//
// The Bullet model: files are immutable, stored contiguously on disk,
// cached contiguously in the server's RAM, and transferred whole. The
// operations are create, size, read and delete — updates make new files,
// and the directory service keeps the version lineage. Objects are named
// and protected by Amoeba sparse capabilities.
//
// This package is the public facade over the implementation packages:
//
//   - Store assembles a Bullet engine on replica disks (RAM- or
//     file-backed) and serves it, in process or over TCP;
//   - Dial connects a Client to a remote store;
//   - Stack wires a complete in-process deployment — Bullet store,
//     directory service, log server and the UNIX emulation — for
//     applications and tests.
//
// The reproduction of the paper's evaluation lives in cmd/benchmark; see
// DESIGN.md and EXPERIMENTS.md.
package bulletfs

import (
	"errors"
	"time"

	"bulletfs/internal/bullet"
	"bulletfs/internal/bulletsvc"
	"bulletfs/internal/capability"
	"bulletfs/internal/client"
	"bulletfs/internal/directory"
	"bulletfs/internal/disk"
	"bulletfs/internal/logsrv"
	"bulletfs/internal/rpc"
	"bulletfs/internal/unixemu"
)

// Re-exported capability types: capabilities address and protect every
// object in the system (paper §2.1).
type (
	// Capability names one object: server port, object number, rights and
	// a cryptographic check field.
	Capability = capability.Capability
	// Rights is the capability's permission bitmask.
	Rights = capability.Rights
	// Port identifies a server (48 bits, location independent).
	Port = capability.Port
)

// Rights bits.
const (
	RightRead   = capability.RightRead
	RightCreate = capability.RightCreate
	RightDelete = capability.RightDelete
	RightModify = capability.RightModify
	RightList   = capability.RightList
	RightAdmin  = capability.RightAdmin
	RightsAll   = capability.RightsAll
)

// Restrict derives a weaker capability from an owner capability without
// contacting the server (the one-way-function scheme of paper §2.1).
func Restrict(c Capability, mask Rights) (Capability, error) {
	return capability.Restrict(c, mask)
}

// ParseCapability decodes the textual capability form printed by
// Capability.String (port:object:rights:check, hex).
func ParseCapability(s string) (Capability, error) { return capability.Parse(s) }

// PortFromName derives a stable service port from a name, so servers and
// clients can agree on it across restarts.
func PortFromName(name string) Port { return capability.PortFromString(name) }

// Client is the Bullet client: Create, Size, Read, Delete, plus the §5
// extensions (Modify, Append, ReadRange) and administrative calls.
type Client = client.Client

// WithCache enables the client-side cache of immutable files.
var WithCache = client.WithCache

// StoreConfig describes a Bullet store to assemble.
type StoreConfig struct {
	// ReplicaPaths are disk image files, one per replica. Empty means two
	// RAM-backed replicas (testing / ephemeral use).
	ReplicaPaths []string
	// Format initializes the disks before serving (required on first run
	// and for RAM-backed replicas, where it is implied).
	Format bool
	// DiskMB is each replica's size when formatting (default 64).
	DiskMB int64
	// Inodes is the inode table capacity when formatting (default 10000).
	Inodes int
	// CacheMB is the server RAM cache (default 16).
	CacheMB int64
	// PortName derives the server's capability port (default "bullet").
	PortName string
	// GroupCommitWindow batches concurrent creates' replica sync
	// round-trips for up to this long (0 disables grouping).
	GroupCommitWindow time.Duration
}

// Store is an assembled Bullet file server.
type Store struct {
	engine *bullet.Server
	tcp    *rpc.TCPServer
}

// NewStore assembles (and, if asked, formats) a Bullet store.
func NewStore(cfg StoreConfig) (*Store, error) {
	if cfg.DiskMB == 0 {
		cfg.DiskMB = 64
	}
	if cfg.Inodes == 0 {
		cfg.Inodes = 10000
	}
	if cfg.CacheMB == 0 {
		cfg.CacheMB = 16
	}
	if cfg.PortName == "" {
		cfg.PortName = "bullet"
	}
	var devs []disk.Device
	if len(cfg.ReplicaPaths) == 0 {
		cfg.Format = true
		for i := 0; i < 2; i++ {
			mem, err := disk.NewMem(512, cfg.DiskMB<<20/512)
			if err != nil {
				return nil, err
			}
			devs = append(devs, mem)
		}
	} else {
		for _, p := range cfg.ReplicaPaths {
			var dev disk.Device
			var err error
			if cfg.Format {
				dev, err = disk.CreateFile(p, 512, cfg.DiskMB<<20/512)
			} else {
				dev, err = disk.OpenFile(p, 512)
			}
			if err != nil {
				return nil, err
			}
			devs = append(devs, dev)
		}
	}
	set, err := disk.NewReplicaSet(devs...)
	if err != nil {
		return nil, err
	}
	if cfg.Format {
		if err := bullet.Format(set, cfg.Inodes); err != nil {
			return nil, err
		}
	}
	engine, err := bullet.New(set, bullet.Options{
		Port:              capability.PortFromString(cfg.PortName),
		CacheBytes:        cfg.CacheMB << 20,
		GroupCommitWindow: cfg.GroupCommitWindow,
	})
	if err != nil {
		return nil, err
	}
	return &Store{engine: engine}, nil
}

// Port returns the store's capability port.
func (s *Store) Port() Port { return s.engine.Port() }

// Engine exposes the underlying engine for advanced use (stats,
// compaction).
func (s *Store) Engine() *bullet.Server { return s.engine }

// ServeTCP starts serving the store on addr and returns the bound
// address.
func (s *Store) ServeTCP(addr string) (string, error) {
	mux := rpc.NewMux(0)
	mux.AttachMetrics(s.engine.Metrics(), bulletsvc.CommandName)
	bulletsvc.New(s.engine).Register(mux)
	s.tcp = rpc.NewTCPServer(mux)
	return s.tcp.Listen(addr)
}

// Close drains write-through and shuts everything down.
func (s *Store) Close() error {
	if s.tcp != nil {
		if err := s.tcp.Close(); err != nil {
			return err
		}
	}
	s.engine.Sync()
	return s.engine.Close()
}

// Dial connects to a Bullet store served at addr under the given service
// port name.
func Dial(addr, portName string, opts ...client.Option) (*Client, Port, error) {
	p := capability.PortFromString(portName)
	tr := rpc.NewTCPTransport(rpc.StaticResolver(map[Port]string{p: addr}), 30*time.Second)
	return client.New(tr, opts...), p, nil
}

// Stack is a complete in-process deployment: a Bullet store, a directory
// server persisting to it, a log server, and clients for all three —
// everything the examples and tests need in one call.
type Stack struct {
	Store     *Store
	Files     *Client
	FilePort  Port
	Dirs      *directory.Client
	DirServer *directory.Server
	Root      Capability
	Logs      *logsrv.Client
	LogServer *logsrv.Server
	Mux       *rpc.Mux
}

// NewStack builds an in-process deployment on RAM disks.
func NewStack() (*Stack, error) {
	store, err := NewStore(StoreConfig{})
	if err != nil {
		return nil, err
	}
	mux := rpc.NewMux(0)
	bulletsvc.New(store.engine).Register(mux)
	tr := rpc.NewLocal(mux)
	files := client.New(tr)

	dsrv, err := directory.New(directory.Options{
		Store: files, StorePort: store.Port(), PFactor: 2,
	})
	if err != nil {
		return nil, err
	}
	dsrv.Register(mux)
	dirs := directory.NewClient(tr)
	root, err := dirs.Root(dsrv.Port())
	if err != nil {
		return nil, err
	}

	lsrv, err := logsrv.New(logsrv.Options{Store: files, StorePort: store.Port(), PFactor: 2})
	if err != nil {
		return nil, err
	}
	lsrv.Register(mux)

	return &Stack{
		Store:     store,
		Files:     files,
		FilePort:  store.Port(),
		Dirs:      dirs,
		DirServer: dsrv,
		Root:      root,
		Logs:      logsrv.NewClient(tr),
		LogServer: lsrv,
		Mux:       mux,
	}, nil
}

// FS returns a POSIX-flavoured view (paper §5's UNIX emulation) rooted at
// the stack's root directory.
func (s *Stack) FS() (*unixemu.FS, error) {
	return unixemu.New(unixemu.Options{
		Files: s.Files, FilePort: s.FilePort,
		Dirs: s.Dirs, Root: s.Root, PFactor: 2,
	})
}

// CollectGarbage reclaims Bullet files no longer referenced by the
// directory service (any binding or retained version), the directory's
// own checkpoint, or a live log's checkpoint — Amoeba's mark-and-sweep
// reconciliation between the naming layer and the store. Orphans arise
// when version histories are trimmed or clients crash between creating a
// file and binding its name. Run it during quiescence (the paper's
// "3 am" maintenance window): files created concurrently with the mark
// phase would be swept wrongly.
func (s *Stack) CollectGarbage() (int, error) {
	keep := s.DirServer.ReferencedObjects(s.FilePort)
	for obj := range s.LogServer.ReferencedObjects(s.FilePort) {
		keep[obj] = true
	}
	return s.Store.Engine().SweepExcept(keep)
}

// ErrNotInitialized means a Stack method was called before Open succeeded.
var ErrNotInitialized = errors.New("bulletfs: stack not initialized")

// Close shuts the stack down.
func (s *Stack) Close() error {
	if s.Store == nil {
		return ErrNotInitialized
	}
	return s.Store.Close()
}
