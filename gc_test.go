package bulletfs_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"bulletfs"
	"bulletfs/internal/bullet"
	"bulletfs/internal/directory"
	"bulletfs/internal/unixemu"
)

// TestGarbageCollectionReclaimsOrphans exercises the Amoeba-style
// reconciliation between the naming layer and the store: files whose
// capabilities fell out of every directory (trimmed version history,
// never-bound uploads) are reclaimed; everything referenced — including
// old versions still in history and the directory's own checkpoint —
// survives.
func TestGarbageCollectionReclaimsOrphans(t *testing.T) {
	stack, err := bulletfs.NewStack()
	if err != nil {
		t.Fatalf("NewStack: %v", err)
	}
	defer stack.Close() //nolint:errcheck // test cleanup

	// A bound file with three versions, all retained by the directory.
	fs, err := unixemu.New(unixemu.Options{
		Files: stack.Files, FilePort: stack.FilePort,
		Dirs: stack.Dirs, Root: stack.Root,
		PFactor: 2, KeepVersions: true,
	})
	if err != nil {
		t.Fatalf("unixemu.New: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := fs.WriteFile("kept.txt", []byte(fmt.Sprintf("version %d", i+1))); err != nil {
			t.Fatalf("WriteFile: %v", err)
		}
	}

	// Orphans: files created but never bound anywhere (a crashed client).
	var orphans []bulletfs.Capability
	for i := 0; i < 4; i++ {
		c, err := stack.Files.Create(stack.FilePort, []byte("orphaned upload"), 2)
		if err != nil {
			t.Fatalf("Create: %v", err)
		}
		orphans = append(orphans, c)
	}

	// A live log whose checkpoint must survive the sweep.
	logCap, err := stack.Logs.CreateLog(stack.LogServer.Port())
	if err != nil {
		t.Fatalf("CreateLog: %v", err)
	}
	if _, err := stack.Logs.Append(logCap, bytes.Repeat([]byte{7}, 100)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := stack.Logs.Flush(logCap); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	liveBefore := stack.Store.Engine().Live()
	removed, err := stack.CollectGarbage()
	if err != nil {
		t.Fatalf("CollectGarbage: %v", err)
	}
	if removed != len(orphans) {
		t.Fatalf("removed %d, want %d orphans", removed, len(orphans))
	}
	if got := stack.Store.Engine().Live(); got != liveBefore-len(orphans) {
		t.Fatalf("Live = %d, want %d", got, liveBefore-len(orphans))
	}

	// Orphans are gone.
	for _, c := range orphans {
		if _, err := stack.Files.Read(c); !errors.Is(err, bullet.ErrNoSuchFile) {
			t.Fatalf("orphan survived the sweep: %v", err)
		}
	}
	// All three retained versions still read.
	versions, err := fs.Versions("kept.txt")
	if err != nil || len(versions) != 3 {
		t.Fatalf("Versions = %d, %v", len(versions), err)
	}
	for i, v := range versions {
		got, err := stack.Files.Read(v)
		if err != nil || string(got) != fmt.Sprintf("version %d", i+1) {
			t.Fatalf("version %d = %q, %v", i+1, got, err)
		}
	}
	// The log still reads (its checkpoint survived).
	logData, err := stack.Logs.Read(logCap)
	if err != nil || len(logData) != 100 {
		t.Fatalf("log after GC = %d bytes, %v", len(logData), err)
	}
	// The directory service still works (its checkpoint survived):
	// mutate and look up.
	if err := stack.Dirs.Enter(stack.Root, "post-gc", versions[2]); err != nil {
		t.Fatalf("Enter after GC: %v", err)
	}

	// A second collection finds nothing.
	removed, err = stack.CollectGarbage()
	if err != nil || removed != 0 {
		t.Fatalf("second GC removed %d, %v", removed, err)
	}
}

// TestGCKeepsTrimmedHistoryConsistent: when the directory trims versions
// beyond MaxVersions, the dropped files become orphans and the collector
// reclaims exactly those.
func TestGCKeepsTrimmedHistoryConsistent(t *testing.T) {
	stack, err := bulletfs.NewStack()
	if err != nil {
		t.Fatalf("NewStack: %v", err)
	}
	defer stack.Close() //nolint:errcheck // test cleanup

	// A tight 2-version history directly on the directory server.
	dsrv, err := directory.New(directory.Options{
		Store: stack.Files, StorePort: stack.FilePort, MaxVersions: 2, PFactor: 2,
	})
	if err != nil {
		t.Fatalf("directory.New: %v", err)
	}
	root := dsrv.Root()

	var all []bulletfs.Capability
	for i := 0; i < 5; i++ {
		c, err := stack.Files.Create(stack.FilePort, []byte(fmt.Sprintf("rev %d", i)), 2)
		if err != nil {
			t.Fatalf("Create: %v", err)
		}
		all = append(all, c)
		if i == 0 {
			err = dsrv.Enter(root, "doc", c)
		} else {
			err = dsrv.Replace(root, "doc", c)
		}
		if err != nil {
			t.Fatalf("bind rev %d: %v", i, err)
		}
	}

	// The mark phase must union every naming service using the store: the
	// ad-hoc directory above AND the stack's own directory server (whose
	// checkpoints also live on this Bullet store).
	keep := dsrv.ReferencedObjects(stack.FilePort)
	for obj := range stack.DirServer.ReferencedObjects(stack.FilePort) {
		keep[obj] = true
	}
	removed, err := stack.Store.Engine().SweepExcept(keep)
	if err != nil {
		t.Fatalf("SweepExcept: %v", err)
	}
	// 5 revisions, history keeps 2 -> exactly the 3 trimmed are orphans.
	if removed != 3 {
		t.Fatalf("removed %d, want 3 trimmed revisions", removed)
	}
	hist, err := dsrv.History(root, "doc")
	if err != nil || len(hist) != 2 {
		t.Fatalf("History = %v, %v", hist, err)
	}
	for _, c := range hist {
		if _, err := stack.Files.Read(c); err != nil {
			t.Fatalf("retained version unreadable after sweep: %v", err)
		}
	}
	for _, c := range all[:3] {
		if _, err := stack.Files.Read(c); !errors.Is(err, bullet.ErrNoSuchFile) {
			t.Fatalf("trimmed version survived: %v", err)
		}
	}
}
