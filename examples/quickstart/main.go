// Quickstart: spin up an in-process Bullet file server on two RAM-backed
// replica disks, store an immutable file, read it back, restrict a
// capability, and survive a server restart.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"bulletfs/internal/bullet"
	"bulletfs/internal/bulletsvc"
	"bulletfs/internal/capability"
	"bulletfs/internal/client"
	"bulletfs/internal/disk"
	"bulletfs/internal/rpc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Two replica disks, as in the paper's hardware (§3).
	d0, err := disk.NewMem(512, 16384) // 8 MB
	if err != nil {
		return err
	}
	d1, err := disk.NewMem(512, 16384)
	if err != nil {
		return err
	}
	replicas, err := disk.NewReplicaSet(d0, d1)
	if err != nil {
		return err
	}
	if err := bullet.Format(replicas, 1000); err != nil {
		return err
	}
	engine, err := bullet.New(replicas, bullet.Options{CacheBytes: 4 << 20})
	if err != nil {
		return err
	}

	// Serve it over the in-process transport and build a client.
	mux := rpc.NewMux(0)
	bulletsvc.New(engine).Register(mux)
	cl := client.New(rpc.NewLocal(mux))
	port := engine.Port()

	// BULLET.CREATE: store a whole file, get back an owner capability.
	// P-FACTOR 2 = don't reply until both disks hold it (§2.2).
	cap1, err := cl.Create(port, []byte("files are immutable and contiguous\n"), 2)
	if err != nil {
		return err
	}
	fmt.Println("created:", cap1)

	// BULLET.SIZE then BULLET.READ (§2.2).
	size, err := cl.Size(cap1)
	if err != nil {
		return err
	}
	data, err := cl.Read(cap1)
	if err != nil {
		return err
	}
	fmt.Printf("read %d bytes: %s", size, data)

	// Derive a new version with the §5 extension — the original is
	// untouched; updates make new files.
	cap2, err := cl.Append(cap1, []byte("new versions are new files\n"), 2)
	if err != nil {
		return err
	}
	v2, err := cl.Read(cap2)
	if err != nil {
		return err
	}
	fmt.Printf("version 2 (%s):\n%s", cap2, v2)

	// Hand out a read-only capability: restriction is a local computation
	// on the owner capability (§2.1), no server involved.
	readOnly, err := capability.Restrict(cap1, capability.RightRead)
	if err != nil {
		return err
	}
	if _, err := cl.Read(readOnly); err != nil {
		return err
	}
	if err := cl.Delete(readOnly); err != nil {
		fmt.Println("delete with read-only capability refused:", err)
	}

	// Crash-restart: a new engine over the same disks recovers everything
	// from the inode table (§3 startup scan).
	engine.Sync()
	engine2, err := bullet.New(replicas, bullet.Options{Port: port, CacheBytes: 4 << 20})
	if err != nil {
		return err
	}
	bulletsvc.New(engine2).Register(mux) // replaces the old handler
	again, err := cl.Read(cap2)
	if err != nil {
		return err
	}
	fmt.Printf("after restart, version 2 still reads: %q\n", string(again[:24])+"...")

	st := engine2.Stats()
	fmt.Printf("server stats after restart: %d reads, %d cache hits, %d misses\n",
		st.Reads, st.CacheHits, st.CacheMisses)
	return nil
}
