// Webassets: an immutable content store for website assets — the modern
// workload the Bullet design anticipated (object stores serve immutable
// blobs behind content-addressed names).
//
// A "deploy" stores each asset as an immutable Bullet file and binds its
// name in the directory service; redeploying replaces bindings, pushing
// the old capability onto the version history. Edge caches hold assets by
// capability: validation is a single directory lookup plus a capability
// comparison — the §5 recipe ("Checking if a cached copy of a file is
// still current is simply done by looking up its capability in the
// directory service, and comparing it").
//
//	go run ./examples/webassets
package main

import (
	"fmt"
	"log"

	"bulletfs/internal/bullet"
	"bulletfs/internal/bulletsvc"
	"bulletfs/internal/capability"
	"bulletfs/internal/client"
	"bulletfs/internal/directory"
	"bulletfs/internal/disk"
	"bulletfs/internal/rpc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// edgeCache is a CDN node: it caches asset bytes keyed by the exact
// capability. Immutability means a hit can never be stale.
type edgeCache struct {
	files  *client.Client
	dirs   *directory.Client
	site   capability.Capability
	cached map[capability.Capability][]byte

	hits, validations, fetches int
}

// serve returns the current bytes for an asset name.
func (e *edgeCache) serve(name string) ([]byte, error) {
	// One cheap lookup tells us which immutable version is current.
	cur, err := e.dirs.Lookup(e.site, name)
	if err != nil {
		return nil, err
	}
	e.validations++
	if data, ok := e.cached[cur]; ok {
		e.hits++
		return data, nil
	}
	data, err := e.files.Read(cur)
	if err != nil {
		return nil, err
	}
	e.fetches++
	e.cached[cur] = data
	return data, nil
}

func run() error {
	// Infrastructure: Bullet store + directory service, in process.
	d0, err := disk.NewMem(512, 32768)
	if err != nil {
		return err
	}
	d1, err := disk.NewMem(512, 32768)
	if err != nil {
		return err
	}
	replicas, err := disk.NewReplicaSet(d0, d1)
	if err != nil {
		return err
	}
	if err := bullet.Format(replicas, 2000); err != nil {
		return err
	}
	engine, err := bullet.New(replicas, bullet.Options{CacheBytes: 8 << 20})
	if err != nil {
		return err
	}
	defer engine.Sync()
	mux := rpc.NewMux(0)
	bulletsvc.New(engine).Register(mux)
	tr := rpc.NewLocal(mux)
	files := client.New(tr)

	dsrv, err := directory.New(directory.Options{
		Store: files, StorePort: engine.Port(), PFactor: 2, MaxVersions: 4,
	})
	if err != nil {
		return err
	}
	dsrv.Register(mux)
	dirs := directory.NewClient(tr)
	root, err := dirs.Root(dsrv.Port())
	if err != nil {
		return err
	}
	site, err := dirs.CreateDir(dsrv.Port())
	if err != nil {
		return err
	}
	if err := dirs.Enter(root, "www.example.org", site); err != nil {
		return err
	}

	deploy := func(release string, assets map[string]string) error {
		fmt.Printf("deploying release %s (%d assets)\n", release, len(assets))
		for name, body := range assets {
			c, err := files.Create(engine.Port(), []byte(body), 2)
			if err != nil {
				return err
			}
			if err := dirs.Enter(site, name, c); err == nil {
				continue
			}
			if err := dirs.Replace(site, name, c); err != nil {
				return err
			}
		}
		return nil
	}

	if err := deploy("v1", map[string]string{
		"index.html": "<h1>v1</h1>",
		"app.js":     "console.log('v1')",
		"style.css":  "body { color: teal }",
	}); err != nil {
		return err
	}

	edge := &edgeCache{
		files:  client.New(tr),
		dirs:   dirs,
		site:   site,
		cached: map[capability.Capability][]byte{},
	}

	// Traffic against v1: first request fetches, the rest validate+hit.
	for i := 0; i < 5; i++ {
		if _, err := edge.serve("index.html"); err != nil {
			return err
		}
		if _, err := edge.serve("app.js"); err != nil {
			return err
		}
	}
	fmt.Printf("after v1 traffic: %d validations, %d hits, %d origin fetches\n",
		edge.validations, edge.hits, edge.fetches)

	// Redeploy only app.js; index.html keeps its capability, so edge
	// caches keep hitting it without refetching.
	if err := deploy("v2", map[string]string{"app.js": "console.log('v2')"}); err != nil {
		return err
	}
	body, err := edge.serve("app.js")
	if err != nil {
		return err
	}
	fmt.Printf("after redeploy, edge serves: %s\n", body)
	if _, err := edge.serve("index.html"); err != nil {
		return err
	}
	fmt.Printf("totals: %d validations, %d hits, %d origin fetches (only the changed asset refetched)\n",
		edge.validations, edge.hits, edge.fetches)

	// Rollback = rebind an old version from the history; the bytes never
	// moved.
	hist, err := dirs.History(site, "app.js")
	if err != nil {
		return err
	}
	if err := dirs.Replace(site, "app.js", hist[0]); err != nil {
		return err
	}
	body, err = edge.serve("app.js")
	if err != nil {
		return err
	}
	fmt.Printf("after rollback, edge serves: %s (from its own cache: %d hits)\n", body, edge.hits)
	return nil
}
