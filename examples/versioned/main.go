// Versioned: the full Amoeba-style stack — Bullet store + directory
// service + the §5 UNIX emulation — showing how "update in place" becomes
// "new immutable version + rebind", with history, time travel, and the
// open-file snapshot semantics immutability gives for free.
//
//	go run ./examples/versioned
package main

import (
	"fmt"
	"log"

	"bulletfs/internal/bullet"
	"bulletfs/internal/bulletsvc"
	"bulletfs/internal/client"
	"bulletfs/internal/directory"
	"bulletfs/internal/disk"
	"bulletfs/internal/rpc"
	"bulletfs/internal/unixemu"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Infrastructure: Bullet + directory service, in process.
	d0, err := disk.NewMem(512, 32768)
	if err != nil {
		return err
	}
	d1, err := disk.NewMem(512, 32768)
	if err != nil {
		return err
	}
	replicas, err := disk.NewReplicaSet(d0, d1)
	if err != nil {
		return err
	}
	if err := bullet.Format(replicas, 2000); err != nil {
		return err
	}
	engine, err := bullet.New(replicas, bullet.Options{CacheBytes: 8 << 20})
	if err != nil {
		return err
	}
	defer engine.Sync()
	mux := rpc.NewMux(0)
	bulletsvc.New(engine).Register(mux)
	tr := rpc.NewLocal(mux)
	files := client.New(tr)

	dsrv, err := directory.New(directory.Options{
		Store: files, StorePort: engine.Port(), PFactor: 2, MaxVersions: 8,
	})
	if err != nil {
		return err
	}
	dsrv.Register(mux)
	dirs := directory.NewClient(tr)
	root, err := dirs.Root(dsrv.Port())
	if err != nil {
		return err
	}

	fs, err := unixemu.New(unixemu.Options{
		Files: files, FilePort: engine.Port(),
		Dirs: dirs, Root: root,
		PFactor: 2, KeepVersions: true,
	})
	if err != nil {
		return err
	}

	// An editing session: ordinary open/write/close calls.
	drafts := []string{
		"The Bullet server is a file server.\n",
		"The Bullet server is a fast file server.\n",
		"The Bullet server is an immutable, contiguous, very fast file server.\n",
	}
	for i, draft := range drafts {
		if err := fs.WriteFile("papers/bullet.txt", []byte(draft)); err != nil {
			return err
		}
		fmt.Printf("saved draft %d (%d bytes)\n", i+1, len(draft))
	}

	// The version mechanism: every close created a new immutable file and
	// the directory kept the lineage.
	versions, err := fs.Versions("papers/bullet.txt")
	if err != nil {
		return err
	}
	fmt.Printf("\n%d retained versions:\n", len(versions))
	for i, v := range versions {
		data, err := files.Read(v)
		if err != nil {
			return err
		}
		fmt.Printf("  v%d (%s): %q\n", i+1, v, firstWords(string(data)))
	}

	// Time travel: bind an old version under a new name — no bytes copied.
	if err := dirs.Enter(root, "bullet-draft1.txt", versions[0]); err != nil {
		return err
	}
	old, err := fs.ReadFile("bullet-draft1.txt")
	if err != nil {
		return err
	}
	fmt.Printf("\nrecovered draft 1 under a new name: %q\n", firstWords(string(old)))

	// Open-file snapshot semantics: a reader holding the file open keeps
	// its version even while a writer replaces it.
	reader, err := fs.Open("papers/bullet.txt", unixemu.ORdonly)
	if err != nil {
		return err
	}
	if err := fs.WriteFile("papers/bullet.txt", []byte("A completely rewritten abstract.\n")); err != nil {
		return err
	}
	snap := make([]byte, 16)
	n, _ := reader.Read(snap)
	cur, err := fs.ReadFile("papers/bullet.txt")
	if err != nil {
		return err
	}
	fmt.Printf("\nreader still sees:  %q...\nnew opens now see:  %q\n", snap[:n], firstWords(string(cur)))
	if err := reader.Close(); err != nil {
		return err
	}

	// What it costs: the store only ever saw creates and reads.
	st := engine.Stats()
	fmt.Printf("\nstore operations: %d creates, %d reads, %d deletes — no update-in-place anywhere\n",
		st.Creates, st.Reads, st.Deletes)
	return nil
}

func firstWords(s string) string {
	if len(s) > 40 {
		return s[:40] + "..."
	}
	return s
}
