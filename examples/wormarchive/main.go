// Wormarchive: the paper's §2 aside made concrete — "It also presents the
// possibility of keeping versions on write-once storage such as optical
// disks." A document goes through several revisions; the directory
// service retains the version lineage; an operator burns the whole
// lineage onto a write-once volume. The live store can then reclaim old
// versions while the archive remains verifiable forever (every record is
// checksummed, and the medium physically refuses rewrites).
//
//	go run ./examples/wormarchive
package main

import (
	"fmt"
	"log"

	"bulletfs/internal/archive"
	"bulletfs/internal/bullet"
	"bulletfs/internal/bulletsvc"
	"bulletfs/internal/client"
	"bulletfs/internal/directory"
	"bulletfs/internal/disk"
	"bulletfs/internal/rpc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The live system.
	d0, err := disk.NewMem(512, 16384)
	if err != nil {
		return err
	}
	d1, err := disk.NewMem(512, 16384)
	if err != nil {
		return err
	}
	replicas, err := disk.NewReplicaSet(d0, d1)
	if err != nil {
		return err
	}
	if err := bullet.Format(replicas, 1000); err != nil {
		return err
	}
	engine, err := bullet.New(replicas, bullet.Options{CacheBytes: 4 << 20})
	if err != nil {
		return err
	}
	defer engine.Sync()
	mux := rpc.NewMux(0)
	bulletsvc.New(engine).Register(mux)
	files := client.New(rpc.NewLocal(mux))
	dsrv, err := directory.New(directory.Options{MaxVersions: 16})
	if err != nil {
		return err
	}
	root := dsrv.Root()

	// An editing history.
	revisions := []string{
		"contract v1: parties agree in principle",
		"contract v2: delivery in Q3, penalty clause added",
		"contract v3: penalty clause softened, Q4 delivery",
		"contract v4 (signed): Q4 delivery, arbitration in Geneva",
	}
	for i, rev := range revisions {
		c, err := files.Create(engine.Port(), []byte(rev), 2)
		if err != nil {
			return err
		}
		if i == 0 {
			err = dsrv.Enter(root, "contract.txt", c)
		} else {
			err = dsrv.Replace(root, "contract.txt", c)
		}
		if err != nil {
			return err
		}
	}
	fmt.Printf("live store holds %d files after %d revisions\n", engine.Live(), len(revisions))

	// The write-once medium (an "optical platter").
	platterDev, err := disk.NewMem(512, 4096)
	if err != nil {
		return err
	}
	platter := disk.NewWORM(platterDev)
	vol, err := archive.Create(platter)
	if err != nil {
		return err
	}

	// Burn the whole lineage.
	hist, err := dsrv.History(root, "contract.txt")
	if err != nil {
		return err
	}
	stored, err := vol.StoreVersions(files.Read, hist)
	if err != nil {
		return err
	}
	fmt.Printf("burned %d versions onto the platter (%d blocks written)\n",
		stored, platter.WrittenBlocks())

	// Re-running the archiver is incremental — nothing new, nothing burned.
	stored, err = vol.StoreVersions(files.Read, hist)
	if err != nil {
		return err
	}
	fmt.Printf("second archive run burned %d records (already complete)\n", stored)

	// The platter physically refuses tampering.
	if err := platter.WriteAt(make([]byte, 512), 512); err != nil {
		fmt.Printf("overwrite attempt on the platter: %v\n", err)
	}

	// The live store reclaims everything but the signed version.
	for _, c := range hist[:len(hist)-1] {
		if err := files.Delete(c); err != nil {
			return err
		}
	}
	fmt.Printf("live store now holds %d file (current version only)\n", engine.Live())

	// Years later: mount the platter cold and audit the lineage.
	vol2, err := archive.Open(platterDev)
	if err != nil {
		return err
	}
	entries, err := vol2.List()
	if err != nil {
		return err
	}
	fmt.Printf("\naudit of the platter (%d records):\n", len(entries))
	for i, e := range entries {
		data, err := vol2.Load(e.Cap) // checksum-verified
		if err != nil {
			return err
		}
		fmt.Printf("  record %d: %d bytes — %q\n", i+1, e.Size, data)
	}
	return nil
}
