// Logpipeline: the paper's own answer to "append doesn't fit immutable
// whole files" (§2): a separate log server accepts cheap appends into a
// RAM tail, folds the tail into an immutable Bullet checkpoint with the
// server-side append extension, and finally *seals* the finished log into
// a plain immutable file that downstream consumers read like any other.
//
//	go run ./examples/logpipeline
package main

import (
	"fmt"
	"log"
	"strings"

	"bulletfs/internal/bullet"
	"bulletfs/internal/bulletsvc"
	"bulletfs/internal/client"
	"bulletfs/internal/disk"
	"bulletfs/internal/logsrv"
	"bulletfs/internal/rpc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A Bullet store backs the log server's checkpoints.
	d0, err := disk.NewMem(512, 32768)
	if err != nil {
		return err
	}
	d1, err := disk.NewMem(512, 32768)
	if err != nil {
		return err
	}
	replicas, err := disk.NewReplicaSet(d0, d1)
	if err != nil {
		return err
	}
	if err := bullet.Format(replicas, 1000); err != nil {
		return err
	}
	engine, err := bullet.New(replicas, bullet.Options{CacheBytes: 8 << 20})
	if err != nil {
		return err
	}
	defer engine.Sync()
	mux := rpc.NewMux(0)
	bulletsvc.New(engine).Register(mux)
	tr := rpc.NewLocal(mux)
	files := client.New(tr)

	logs, err := logsrv.New(logsrv.Options{
		Store: files, StorePort: engine.Port(),
		FlushThreshold: 512, PFactor: 2,
	})
	if err != nil {
		return err
	}
	logs.Register(mux)
	lc := logsrv.NewClient(tr)

	// A day of request logging: two services each append to their log.
	apiLog, err := lc.CreateLog(logs.Port())
	if err != nil {
		return err
	}
	webLog, err := lc.CreateLog(logs.Port())
	if err != nil {
		return err
	}

	for i := 0; i < 200; i++ {
		if _, err := lc.Append(apiLog, []byte(fmt.Sprintf("api: request %03d ok\n", i))); err != nil {
			return err
		}
		if i%3 == 0 {
			if _, err := lc.Append(webLog, []byte(fmt.Sprintf("web: page %03d served\n", i))); err != nil {
				return err
			}
		}
	}

	apiSize, err := lc.Size(apiLog)
	if err != nil {
		return err
	}
	st := logs.Stats()
	fmt.Printf("api log: %d bytes after %d appends; server folded the tail %d times\n",
		apiSize, st.Appends, st.Flushes)
	fmt.Printf("bullet store holds %d checkpoint files (one per live log)\n", engine.Live())

	// Reading a live log stitches checkpoint + RAM tail.
	data, err := lc.Read(apiLog)
	if err != nil {
		return err
	}
	lines := strings.Count(string(data), "\n")
	fmt.Printf("api log readback: %d lines, first: %q\n", lines, firstLine(data))

	// End of day: seal. The log becomes a plain immutable Bullet file.
	sealed, err := lc.Seal(apiLog)
	if err != nil {
		return err
	}
	archived, err := files.Read(sealed)
	if err != nil {
		return err
	}
	fmt.Printf("sealed api log -> %s (%d bytes, immutable)\n", sealed, len(archived))

	// Downstream: a consumer greps the archive without the log server.
	errors := 0
	for _, line := range strings.Split(string(archived), "\n") {
		if strings.Contains(line, "ok") {
			errors++ // count successes, really
		}
	}
	fmt.Printf("archive analysis: %d 'ok' lines of %d\n", errors, lines)

	// The web log keeps running.
	if _, err := lc.Append(webLog, []byte("web: still alive\n")); err != nil {
		return err
	}
	webData, err := lc.Read(webLog)
	if err != nil {
		return err
	}
	fmt.Printf("web log still live: %d bytes, %d logs remain on the server\n",
		len(webData), logs.LogCount())
	return nil
}

func firstLine(b []byte) string {
	if i := strings.IndexByte(string(b), '\n'); i >= 0 {
		return string(b[:i])
	}
	return string(b)
}
