package bulletfs_test

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"bulletfs/internal/bullet"
	"bulletfs/internal/bulletsvc"
	"bulletfs/internal/capability"
	"bulletfs/internal/client"
	"bulletfs/internal/disk"
	"bulletfs/internal/rpc"
	"bulletfs/internal/trace"
)

// slowDevice stretches every read so concurrent faults for the same file
// reliably overlap: the second reader must find the first one's fault in
// flight and wait on it rather than racing past it.
type slowDevice struct {
	disk.Device
	delay time.Duration
}

func (d *slowDevice) ReadAt(p []byte, off int64) error {
	time.Sleep(d.delay)
	return d.Device.ReadAt(p, off)
}

// traceWorld is the full wire stack — client stubs with trace IDs -> TCP
// transport (v2 frames) -> mux -> service -> engine -> cache/disk — with
// a flight recorder attached, exactly as bulletd wires it.
type traceWorld struct {
	engine *bullet.Server
	rec    *trace.Recorder
	cl     *client.Client
	addr   string
	t      *testing.T
}

// newClient opens an extra client on its own TCP connection, simulating
// a second client machine (one TCPTransport serializes transactions on
// its pooled connection, so true concurrency needs two transports).
func (w *traceWorld) newClient() *client.Client {
	tr := rpc.NewTCPTransport(rpc.StaticResolver(map[capability.Port]string{
		w.engine.Port(): w.addr,
	}), 10*time.Second)
	w.t.Cleanup(func() { tr.Close() }) //nolint:errcheck // test cleanup
	return client.New(tr, client.WithTraceIDs())
}

func newTraceWorld(t *testing.T, cacheBytes int64, readDelay time.Duration) *traceWorld {
	t.Helper()
	var devs []disk.Device
	for i := 0; i < 2; i++ {
		mem, err := disk.NewMem(512, (8<<20)/512)
		if err != nil {
			t.Fatalf("NewMem: %v", err)
		}
		if readDelay > 0 {
			devs = append(devs, &slowDevice{Device: mem, delay: readDelay})
		} else {
			devs = append(devs, mem)
		}
	}
	set, err := disk.NewReplicaSet(devs...)
	if err != nil {
		t.Fatalf("NewReplicaSet: %v", err)
	}
	if err := bullet.Format(set, 100); err != nil {
		t.Fatalf("Format: %v", err)
	}
	engine, err := bullet.New(set, bullet.Options{CacheBytes: cacheBytes})
	if err != nil {
		t.Fatalf("bullet.New: %v", err)
	}
	t.Cleanup(func() { engine.Close() }) //nolint:errcheck // test cleanup

	rec := trace.NewRecorder(trace.WithCapacity(64, 8))
	t.Cleanup(rec.Close)
	mux := rpc.NewMux(0)
	mux.AttachRecorder(rec)
	svc := bulletsvc.New(engine)
	svc.AttachRecorder(rec)
	svc.Register(mux)

	srv := rpc.NewTCPServer(mux)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { srv.Close() }) //nolint:errcheck // test cleanup
	tr := rpc.NewTCPTransport(rpc.StaticResolver(map[capability.Port]string{
		engine.Port(): addr,
	}), 10*time.Second)
	t.Cleanup(func() { tr.Close() }) //nolint:errcheck // test cleanup

	return &traceWorld{
		engine: engine,
		rec:    rec,
		cl:     client.New(tr, client.WithTraceIDs()),
		addr:   addr,
		t:      t,
	}
}

// spansOf collects all spans with the given op across a trace.
func spansOf(tr *trace.JSONTrace, op string) []trace.JSONSpan {
	var out []trace.JSONSpan
	for _, sp := range tr.Spans {
		if sp.Op == op {
			out = append(out, sp)
		}
	}
	return out
}

// traceWith returns the traces containing at least one span with op.
func tracesWith(ts []trace.JSONTrace, op string) []trace.JSONTrace {
	var out []trace.JSONTrace
	for i := range ts {
		if len(spansOf(&ts[i], op)) > 0 {
			out = append(out, ts[i])
		}
	}
	return out
}

// TestTraceColdReadSpansAllLayers is the wire round trip of the tentpole:
// a cold read fetched through the TRACE RPC (the same call bulletctl
// trace -json makes) must show a span tree touching all four layers —
// rpc request -> engine read -> cache miss -> disk read — under the
// client-chosen trace ID, plus the replica fan-out on the create path.
func TestTraceColdReadSpansAllLayers(t *testing.T) {
	// 64 KB arena, two 40 KB files: creating B evicts A, so reading A is
	// a genuine cold read that faults from disk.
	w := newTraceWorld(t, 64<<10, 0)
	port := w.engine.Port()

	payload := bytes.Repeat([]byte{0xAB}, 40<<10)
	capA, err := w.cl.Create(port, payload, 2)
	if err != nil {
		t.Fatalf("Create A: %v", err)
	}
	if _, err := w.cl.Create(port, bytes.Repeat([]byte{0xBA}, 40<<10), 2); err != nil {
		t.Fatalf("Create B: %v", err)
	}
	if got, err := w.cl.Read(capA); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("cold Read A: %v", err)
	}

	ts, err := w.cl.Traces(capA, false)
	if err != nil {
		t.Fatalf("Traces: %v", err)
	}

	// The create fans out one replica-commit child per live replica.
	creates := tracesWith(ts, "create")
	if len(creates) != 2 {
		t.Fatalf("%d create traces, want 2", len(creates))
	}
	for _, ct := range creates {
		commits := spansOf(&ct, "replica-commit")
		if len(commits) != 2 {
			t.Fatalf("create trace %s has %d replica-commit spans, want one per live replica (2): %+v",
				ct.ID, len(commits), ct.Spans)
		}
		seen := map[int8]bool{}
		for _, sp := range commits {
			seen[sp.Replica] = true
			if sp.PFactor != 2 {
				t.Errorf("replica-commit p_factor = %d, want 2", sp.PFactor)
			}
			if sp.Dur == -1 {
				t.Errorf("p-factor-2 commit on replica %d still pending in the record", sp.Replica)
			}
		}
		if !seen[0] || !seen[1] {
			t.Errorf("create trace %s commit replicas = %v, want {0,1}", ct.ID, seen)
		}
	}

	// The cold read touches every layer.
	reads := tracesWith(ts, "read")
	if len(reads) != 1 {
		t.Fatalf("%d read traces, want 1", len(reads))
	}
	rt := reads[0]
	layers := map[string]bool{}
	for _, sp := range rt.Spans {
		layers[sp.Layer] = true
	}
	for _, l := range []string{"rpc", "engine", "cache", "disk"} {
		if !layers[l] {
			t.Errorf("cold-read trace missing layer %q: %+v", l, rt.Spans)
		}
	}
	if root := rt.Spans[0]; root.Op != "request" || root.Parent != -1 {
		t.Errorf("first span = %+v, want the rpc request root", root)
	}
	if lookups := spansOf(&rt, "cache-lookup"); len(lookups) == 0 || lookups[0].CacheHit != "miss" {
		t.Errorf("cold read cache-lookup spans = %+v, want a miss", lookups)
	}
	if faults := spansOf(&rt, "fault"); len(faults) != 1 || faults[0].Merged {
		t.Errorf("fault spans = %+v, want one unmerged fault", faults)
	}
	if dr := spansOf(&rt, "disk-read"); len(dr) != 1 || dr[0].Bytes != int64(len(payload)) {
		t.Errorf("disk-read spans = %+v, want one covering %d bytes", dr, len(payload))
	}

	// The ID the server filed it under is the ID this client generated:
	// client IDs keep the server's local-assignment bit clear.
	if rt.ID[0] >= '8' {
		t.Errorf("read trace ID %s has the server-local bit set; client IDs must not", rt.ID)
	}
}

// TestTraceConcurrentColdReadsMergeOnce: two concurrent cold reads of the
// same file produce two traces, each with a fault span — and exactly one
// of them is marked merged (the waiter that piggybacked on the leader's
// disk read). The fault-merge accounting must never double-count.
func TestTraceConcurrentColdReadsMergeOnce(t *testing.T) {
	// Slow disk reads guarantee the second read arrives while the first
	// one's fault is still in flight; creating B evicts A from the
	// 16 KB arena so both reads of A start cold.
	w := newTraceWorld(t, 16<<10, 30*time.Millisecond)
	port := w.engine.Port()

	payload := bytes.Repeat([]byte{0xCD}, 12<<10)
	capA, err := w.cl.Create(port, payload, 0)
	if err != nil {
		t.Fatalf("Create A: %v", err)
	}
	if _, err := w.cl.Create(port, bytes.Repeat([]byte{0xDC}, 12<<10), 0); err != nil {
		t.Fatalf("Create B: %v", err)
	}

	clients := []*client.Client{w.cl, w.newClient()}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i == 1 {
				time.Sleep(5 * time.Millisecond) // land inside the leader's fault window
			}
			got, err := clients[i].Read(capA)
			if err == nil && !bytes.Equal(got, payload) {
				err = errors.New("wrong bytes")
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent read %d: %v", i, err)
		}
	}

	ts, err := w.cl.Traces(capA, false)
	if err != nil {
		t.Fatalf("Traces: %v", err)
	}
	reads := tracesWith(ts, "read")
	if len(reads) != 2 {
		t.Fatalf("%d read traces, want 2", len(reads))
	}
	merged, diskReads := 0, 0
	for _, rt := range reads {
		faults := spansOf(&rt, "fault")
		if len(faults) != 1 {
			t.Fatalf("trace %s has %d fault spans, want 1", rt.ID, len(faults))
		}
		if faults[0].Merged {
			merged++
		}
		diskReads += len(spansOf(&rt, "disk-read"))
	}
	if merged != 1 {
		t.Errorf("merged fault spans = %d across both reads, want exactly 1", merged)
	}
	if diskReads != 1 {
		t.Errorf("disk-read spans = %d across both reads, want 1 (one physical read, shared)", diskReads)
	}
}

// TestTraceRequiresReadRight: the TRACE RPC is capability-checked with
// the same rule as STATS — the read right admits, anything less refuses.
func TestTraceRequiresReadRight(t *testing.T) {
	w := newTraceWorld(t, 1<<20, 0)
	capA, err := w.cl.Create(w.engine.Port(), []byte("observable"), 0)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	delOnly, err := capability.Restrict(capA, capability.RightDelete)
	if err != nil {
		t.Fatalf("Restrict: %v", err)
	}
	if _, err := w.cl.Traces(delOnly, false); !errors.Is(err, capability.ErrBadRights) {
		t.Errorf("Traces with delete-only capability: err = %v, want ErrBadRights", err)
	}
	forged := capA
	forged.Check[0] ^= 0xFF
	if _, err := w.cl.Traces(forged, false); !errors.Is(err, capability.ErrBadCheck) {
		t.Errorf("Traces with forged check: err = %v, want ErrBadCheck", err)
	}
	if _, err := w.cl.Traces(capA, true); err != nil {
		t.Errorf("Traces -slow with full capability: %v", err)
	}
}
