package bulletfs_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"bulletfs"
	"bulletfs/internal/bullet"
	"bulletfs/internal/bulletsvc"
	"bulletfs/internal/capability"
	"bulletfs/internal/client"
	"bulletfs/internal/directory"
	"bulletfs/internal/disk"
	"bulletfs/internal/rpc"
	"bulletfs/internal/unixemu"
)

// TestFederatedBulletServers exercises the paper's §2.1 claim that the
// directory service's single naming space "has allowed us to link
// multiple Bullet file servers together providing one single large file
// service": files live on different servers; capabilities route by port;
// one directory names them all.
func TestFederatedBulletServers(t *testing.T) {
	// Two independent Bullet stores, each on its own TCP endpoint.
	mkStore := func(name string) (*bulletfs.Store, string) {
		st, err := bulletfs.NewStore(bulletfs.StoreConfig{PortName: name, DiskMB: 8})
		if err != nil {
			t.Fatalf("NewStore(%s): %v", name, err)
		}
		t.Cleanup(func() { st.Close() }) //nolint:errcheck // test cleanup
		addr, err := st.ServeTCP("127.0.0.1:0")
		if err != nil {
			t.Fatalf("ServeTCP: %v", err)
		}
		return st, addr
	}
	storeA, addrA := mkStore("amsterdam")
	storeB, addrB := mkStore("berlin")

	// One transport that can reach both (the "gateway" routing table).
	tr := rpc.NewTCPTransport(rpc.StaticResolver(map[capability.Port]string{
		storeA.Port(): addrA,
		storeB.Port(): addrB,
	}), 10*time.Second)
	defer tr.Close() //nolint:errcheck // test cleanup
	cl := client.New(tr)

	// A directory server (in-process) naming files from both stores.
	dsrv, err := directory.New(directory.Options{})
	if err != nil {
		t.Fatalf("directory.New: %v", err)
	}
	root := dsrv.Root()

	capA, err := cl.Create(storeA.Port(), []byte("stored in amsterdam"), 2)
	if err != nil {
		t.Fatalf("Create on A: %v", err)
	}
	capB, err := cl.Create(storeB.Port(), []byte("stored in berlin"), 2)
	if err != nil {
		t.Fatalf("Create on B: %v", err)
	}
	if err := dsrv.Enter(root, "a.txt", capA); err != nil {
		t.Fatalf("Enter: %v", err)
	}
	if err := dsrv.Enter(root, "b.txt", capB); err != nil {
		t.Fatalf("Enter: %v", err)
	}

	// A client that only knows the directory resolves either file and the
	// capability's port routes the read to the right machine.
	for name, want := range map[string]string{
		"a.txt": "stored in amsterdam",
		"b.txt": "stored in berlin",
	} {
		c, err := dsrv.Lookup(root, name)
		if err != nil {
			t.Fatalf("Lookup(%s): %v", name, err)
		}
		got, err := cl.Read(c)
		if err != nil || string(got) != want {
			t.Fatalf("Read(%s) = %q, %v", name, got, err)
		}
	}

	// Each server only ever saw its own file.
	if storeA.Engine().Live() != 1 || storeB.Engine().Live() != 1 {
		t.Fatalf("Live = %d/%d, want 1/1",
			storeA.Engine().Live(), storeB.Engine().Live())
	}
}

// TestFullStackOverTCP runs the complete deployment — Bullet store,
// directory service, UNIX emulation — through real TCP sockets.
func TestFullStackOverTCP(t *testing.T) {
	// Server process: engine + directory on one mux, one listener.
	devs := make([]disk.Device, 2)
	for i := range devs {
		mem, err := disk.NewMem(512, 8192)
		if err != nil {
			t.Fatalf("NewMem: %v", err)
		}
		devs[i] = mem
	}
	set, err := disk.NewReplicaSet(devs...)
	if err != nil {
		t.Fatalf("NewReplicaSet: %v", err)
	}
	if err := bullet.Format(set, 500); err != nil {
		t.Fatalf("Format: %v", err)
	}
	eng, err := bullet.New(set, bullet.Options{CacheBytes: 1 << 20})
	if err != nil {
		t.Fatalf("bullet.New: %v", err)
	}
	defer eng.Sync()
	serverMux := rpc.NewMux(0)
	bulletsvc.New(eng).Register(serverMux)

	// The directory server persists through its own loopback client.
	dsrv, err := directory.New(directory.Options{
		Store:     client.New(rpc.NewLocal(serverMux)),
		StorePort: eng.Port(),
		PFactor:   2,
	})
	if err != nil {
		t.Fatalf("directory.New: %v", err)
	}
	dsrv.Register(serverMux)

	tcp := rpc.NewTCPServer(serverMux)
	addr, err := tcp.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer tcp.Close() //nolint:errcheck // test cleanup

	// Client process: everything over the wire.
	tr := rpc.NewTCPTransport(rpc.StaticResolver(map[capability.Port]string{
		eng.Port():  addr,
		dsrv.Port(): addr,
	}), 10*time.Second)
	defer tr.Close() //nolint:errcheck // test cleanup
	files := client.New(tr)
	dirs := directory.NewClient(tr)
	root, err := dirs.Root(dsrv.Port())
	if err != nil {
		t.Fatalf("Root over TCP: %v", err)
	}
	fs, err := unixemu.New(unixemu.Options{
		Files: files, FilePort: eng.Port(),
		Dirs: dirs, Root: root, PFactor: 2,
	})
	if err != nil {
		t.Fatalf("unixemu.New: %v", err)
	}

	// A realistic little session.
	for i := 0; i < 5; i++ {
		p := fmt.Sprintf("home/user/doc%d.txt", i)
		if err := fs.WriteFile(p, bytes.Repeat([]byte{byte('a' + i)}, 2000+i*100)); err != nil {
			t.Fatalf("WriteFile(%s): %v", p, err)
		}
	}
	if err := fs.WriteFile("home/user/doc2.txt", []byte("rewritten")); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	names, err := fs.ReadDir("home/user")
	if err != nil || len(names) != 5 {
		t.Fatalf("ReadDir = %v, %v", names, err)
	}
	got, err := fs.ReadFile("home/user/doc2.txt")
	if err != nil || string(got) != "rewritten" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	if err := fs.Rename("home/user/doc4.txt", "archive/old4.txt"); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	if _, err := fs.ReadFile("archive/old4.txt"); err != nil {
		t.Fatalf("read renamed: %v", err)
	}

	// Server-side restart of the directory from its Bullet checkpoint,
	// still over TCP from the client's perspective.
	state := dsrv.StateCap()
	dsrv2, err := directory.New(directory.Options{
		Port:      dsrv.Port(),
		Store:     client.New(rpc.NewLocal(serverMux)),
		StorePort: eng.Port(),
		State:     state,
		PFactor:   2,
	})
	if err != nil {
		t.Fatalf("directory restart: %v", err)
	}
	dsrv2.Register(serverMux) // replaces the handler
	got, err = fs.ReadFile("archive/old4.txt")
	if err != nil || len(got) == 0 {
		t.Fatalf("read after directory restart: %q, %v", got, err)
	}
}

// TestManyClientsOneServerTCP hammers one store from several concurrent
// TCP clients, checking isolation of their files.
func TestManyClientsOneServerTCP(t *testing.T) {
	store, err := bulletfs.NewStore(bulletfs.StoreConfig{DiskMB: 16, PortName: "shared"})
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	defer store.Close() //nolint:errcheck // test cleanup
	addr, err := store.ServeTCP("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ServeTCP: %v", err)
	}

	const clients = 6
	errc := make(chan error, clients)
	for id := 0; id < clients; id++ {
		go func(id int) {
			cl, port, err := bulletfs.Dial(addr, "shared")
			if err != nil {
				errc <- err
				return
			}
			for i := 0; i < 25; i++ {
				data := bytes.Repeat([]byte{byte(id*16 + i)}, 500+id*37)
				c, err := cl.Create(port, data, 1)
				if err != nil {
					errc <- fmt.Errorf("client %d create: %w", id, err)
					return
				}
				got, err := cl.Read(c)
				if err != nil || !bytes.Equal(got, data) {
					errc <- fmt.Errorf("client %d read corrupted", id)
					return
				}
				if i%3 == 0 {
					if err := cl.Delete(c); err != nil {
						errc <- fmt.Errorf("client %d delete: %w", id, err)
						return
					}
				}
			}
			errc <- nil
		}(id)
	}
	for i := 0; i < clients; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	want := clients * 25 * 2 / 3 // 25 files each, every third deleted
	if live := store.Engine().Live(); live < want-clients || live > want+clients {
		t.Fatalf("Live = %d, want about %d", live, want)
	}
}
