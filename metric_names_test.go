package bulletfs_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"bulletfs/internal/bullet"
	"bulletfs/internal/bulletsvc"
	"bulletfs/internal/client"
	"bulletfs/internal/disk"
	"bulletfs/internal/rpc"
	"bulletfs/internal/scrub"
	"bulletfs/internal/stats"
	"bulletfs/internal/trace"
)

var updateGoldens = flag.Bool("update", false, "rewrite golden files instead of comparing")

// TestMetricNamesStable pins the full metric namespace of a fully-wired
// server against testdata/metric_names.txt. Dashboards, alert rules and
// the Prometheus scrape all key on these names, so a rename or removal
// is a breaking change that must be deliberate: if this test fails,
// either revert the name change, or — if the change is intended —
// update the golden (`go test -run TestMetricNamesStable -update .`)
// AND the namespace table in docs/OBSERVABILITY.md together.
func TestMetricNamesStable(t *testing.T) {
	// A deterministic world: two replicas, every optional subsystem
	// attached, and one request per RPC op whose per-op metrics the
	// golden covers (rpc.<op>.* instruments register lazily).
	var devs []disk.Device
	for i := 0; i < 2; i++ {
		mem, err := disk.NewMem(512, (8<<20)/512)
		if err != nil {
			t.Fatalf("NewMem: %v", err)
		}
		devs = append(devs, mem)
	}
	set, err := disk.NewReplicaSet(devs...)
	if err != nil {
		t.Fatalf("NewReplicaSet: %v", err)
	}
	if err := bullet.Format(set, 100); err != nil {
		t.Fatalf("Format: %v", err)
	}
	engine, err := bullet.New(set, bullet.Options{CacheBytes: 1 << 20})
	if err != nil {
		t.Fatalf("bullet.New: %v", err)
	}
	defer engine.Close() //nolint:errcheck // test teardown

	recorder := trace.NewRecorder()
	defer recorder.Close()
	scrubber := scrub.New(engine, scrub.Config{Interval: 0})
	scrubber.AttachMetrics(engine.Metrics())
	collector := stats.NewCollector(engine.Metrics(), time.Hour, 8)
	defer collector.Close()

	mux := rpc.NewMux(0)
	mux.AttachMetrics(engine.Metrics(), bulletsvc.CommandName)
	mux.AttachRecorder(recorder)
	svc := bulletsvc.New(engine)
	svc.AttachRecorder(recorder)
	svc.AttachScrubber(scrubber)
	svc.AttachCollector(collector)
	adm := bulletsvc.NewAdmission(64)
	adm.AttachMetrics(engine.Metrics())
	svc.AttachAdmission(adm)
	svc.Register(mux)

	cl := client.New(&rpc.LocalID{Mux: mux}, client.WithTraceIDs())
	cp, err := cl.Create(engine.Port(), []byte("golden"), 1)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := cl.Read(cp); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if _, err := cl.Size(cp); err != nil {
		t.Fatalf("Size: %v", err)
	}
	if _, err := cl.Stats(cp); err != nil {
		t.Fatalf("Stats: %v", err)
	}
	// Two ticks so the derived-update path has run before snapshotting.
	base := time.Unix(1_700_000_000, 0)
	collector.Tick(base)
	collector.Tick(base.Add(time.Second))

	snap := engine.Metrics().Snapshot()
	var lines []string
	for name := range snap.Counters {
		lines = append(lines, "counter "+name)
	}
	for name := range snap.Gauges {
		lines = append(lines, "gauge "+name)
	}
	for name := range snap.Histograms {
		lines = append(lines, "histogram "+name)
	}
	sort.Strings(lines)
	got := strings.Join(lines, "\n") + "\n"

	golden := filepath.Join("testdata", "metric_names.txt")
	if *updateGoldens {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatalf("rewriting golden: %v", err)
		}
		return
	}
	wantBytes, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden: %v (run with -update to create it)", err)
	}
	want := string(wantBytes)
	if got == want {
		return
	}
	t.Errorf("metric namespace changed:\n%s\nMetric names are a public interface (dashboards, alerts, the "+
		"Prometheus scrape). If this rename/removal is intentional, update the golden "+
		"(go test -run TestMetricNamesStable -update .) and the namespace table in docs/OBSERVABILITY.md; "+
		"otherwise keep the old name.", diffLines(want, got))
}

// diffLines is a minimal set-difference report: lines only in the
// golden (removed) and only in the snapshot (added).
func diffLines(want, got string) string {
	wantSet := make(map[string]bool)
	for _, l := range strings.Split(strings.TrimSpace(want), "\n") {
		wantSet[l] = true
	}
	gotSet := make(map[string]bool)
	for _, l := range strings.Split(strings.TrimSpace(got), "\n") {
		gotSet[l] = true
	}
	var b strings.Builder
	for _, l := range strings.Split(strings.TrimSpace(want), "\n") {
		if !gotSet[l] {
			fmt.Fprintf(&b, "  removed: %s\n", l)
		}
	}
	for _, l := range strings.Split(strings.TrimSpace(got), "\n") {
		if !wantSet[l] {
			fmt.Fprintf(&b, "  added:   %s\n", l)
		}
	}
	if b.Len() == 0 {
		return "  (ordering or duplication change)"
	}
	return strings.TrimRight(b.String(), "\n")
}
