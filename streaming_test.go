package bulletfs_test

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"bulletfs"
	"bulletfs/internal/bullet"
	"bulletfs/internal/capability"
	"bulletfs/internal/client"
	"bulletfs/internal/rpc"
)

// These tests exercise the streaming read path and the READ_RANGE edge
// cases over real TCP sockets — the zero-copy reply path (pinned cache
// bytes handed to the socket write), the chunked READSTREAM frames, and
// the create-session upload all behave differently on the wire than
// in-process, so the wire is what gets tested.

func newWireStore(t *testing.T) (*bulletfs.Store, *client.Client) {
	t.Helper()
	st, err := bulletfs.NewStore(bulletfs.StoreConfig{PortName: "stream-test", DiskMB: 16})
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	t.Cleanup(func() { st.Close() }) //nolint:errcheck // test cleanup
	addr, err := st.ServeTCP("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ServeTCP: %v", err)
	}
	tr := rpc.NewTCPTransport(rpc.StaticResolver(map[capability.Port]string{st.Port(): addr}), 10*time.Second)
	t.Cleanup(func() { tr.Close() }) //nolint:errcheck // test cleanup
	return st, client.New(tr)
}

func TestReadRangeEdgeCasesOverWire(t *testing.T) {
	st, cl := newWireStore(t)
	data := []byte("0123456789abcdef")
	c, err := cl.Create(st.Port(), data, 1)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	empty, err := cl.Create(st.Port(), nil, 1)
	if err != nil {
		t.Fatalf("Create(empty): %v", err)
	}

	cases := []struct {
		name    string
		cap     capability.Capability
		off, n  int64
		want    []byte
		wantErr error
	}{
		{"interior", c, 4, 4, []byte("4567"), nil},
		{"to-end", c, 10, -1, []byte("abcdef"), nil},
		{"clipped-at-eof", c, 12, 100, []byte("cdef"), nil},
		{"offset-at-eof", c, 16, 4, []byte{}, nil},
		{"offset-past-eof", c, 17, 1, nil, bullet.ErrBadOffset},
		{"zero-length", c, 4, 0, []byte{}, nil},
		{"empty-file-whole", empty, 0, -1, []byte{}, nil},
		{"empty-file-span", empty, 0, 8, []byte{}, nil},
		{"empty-file-past-eof", empty, 1, 1, nil, bullet.ErrBadOffset},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := cl.ReadRange(tc.cap, tc.off, tc.n)
			if tc.wantErr != nil {
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("ReadRange(%d, %d) err = %v, want %v", tc.off, tc.n, err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("ReadRange(%d, %d): %v", tc.off, tc.n, err)
			}
			if !bytes.Equal(got, tc.want) {
				t.Fatalf("ReadRange(%d, %d) = %q, want %q", tc.off, tc.n, got, tc.want)
			}
		})
	}
}

func TestReadStreamOverWire(t *testing.T) {
	st, cl := newWireStore(t)
	// Larger than the server's default 256 KiB chunk, so the reply spans
	// multiple AMRS frames off one pin.
	data := make([]byte, 1<<20)
	for i := range data {
		data[i] = byte(i * 31)
	}
	c, err := cl.Create(st.Port(), data, 1)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}

	var buf bytes.Buffer
	n, err := cl.ReadStream(c, 0, &buf)
	if err != nil {
		t.Fatalf("ReadStream: %v", err)
	}
	if n != int64(len(data)) || !bytes.Equal(buf.Bytes(), data) {
		t.Fatalf("ReadStream returned %d bytes (want %d), content match = %v",
			n, len(data), bytes.Equal(buf.Bytes(), data))
	}

	// From an interior offset.
	buf.Reset()
	n, err = cl.ReadStream(c, int64(len(data))-1000, &buf)
	if err != nil {
		t.Fatalf("ReadStream(tail): %v", err)
	}
	if n != 1000 || !bytes.Equal(buf.Bytes(), data[len(data)-1000:]) {
		t.Fatalf("ReadStream(tail) = %d bytes, want 1000 matching the file tail", n)
	}

	// Zero-length stream: an empty file still completes the transaction.
	empty, err := cl.Create(st.Port(), nil, 1)
	if err != nil {
		t.Fatalf("Create(empty): %v", err)
	}
	buf.Reset()
	if n, err = cl.ReadStream(empty, 0, &buf); err != nil || n != 0 {
		t.Fatalf("ReadStream(empty) = %d, %v; want 0, nil", n, err)
	}

	// A transaction after a stream proves the connection is still framed
	// correctly (no stray frames left unread).
	size, err := cl.Size(c)
	if err != nil || size != int64(len(data)) {
		t.Fatalf("Size after stream = %d, %v", size, err)
	}
}

func TestCreateFromOverWire(t *testing.T) {
	st, cl := newWireStore(t)
	data := make([]byte, 300_000)
	for i := range data {
		data[i] = byte(i ^ (i >> 9))
	}
	// A chunk size that doesn't divide the file exercises the final short
	// chunk.
	c, err := cl.CreateFrom(st.Port(), bytes.NewReader(data), 64<<10, 1)
	if err != nil {
		t.Fatalf("CreateFrom: %v", err)
	}
	got, err := cl.Read(c)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("Read back after CreateFrom: %d bytes, %v; match = %v",
			len(got), err, bytes.Equal(got, data))
	}
}

// TestConcurrentStreamReadsUnderCompaction races the pinned-View reply
// path against cache eviction and both compactors: streaming readers
// hold pins across socket writes while churn (create/delete) and
// explicit compaction runs try to move everything underneath them. Run
// under -race in CI's race-stress step.
func TestConcurrentStreamReadsUnderCompaction(t *testing.T) {
	st, cl := newWireStore(t)
	// Stable files the readers hammer.
	files := make([]capability.Capability, 4)
	payloads := make([][]byte, len(files))
	for i := range files {
		payloads[i] = bytes.Repeat([]byte{byte('A' + i)}, 64<<10)
		c, err := cl.Create(st.Port(), payloads[i], 1)
		if err != nil {
			t.Fatalf("Create: %v", err)
		}
		files[i] = c
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Readers: whole-file streams and interior ranges.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				f := (r + i) % len(files)
				var buf bytes.Buffer
				if _, err := cl.ReadStream(files[f], 0, &buf); err != nil {
					t.Errorf("ReadStream: %v", err)
					return
				}
				if !bytes.Equal(buf.Bytes(), payloads[f]) {
					t.Errorf("ReadStream returned wrong bytes for file %d", f)
					return
				}
				if got, err := cl.ReadRange(files[f], 1000, 512); err != nil ||
					!bytes.Equal(got, payloads[f][1000:1512]) {
					t.Errorf("ReadRange under churn: %v", err)
					return
				}
			}
		}(r)
	}

	// Churn: transient files force eviction pressure; deletes punch holes
	// for the compactors to close.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c, err := cl.Create(st.Port(), bytes.Repeat([]byte{byte(i)}, 32<<10), 1)
			if err != nil {
				t.Errorf("churn Create: %v", err)
				return
			}
			if err := cl.Delete(c); err != nil {
				t.Errorf("churn Delete: %v", err)
				return
			}
		}
	}()

	// Compactors.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := cl.CompactCache(st.Port()); err != nil {
				t.Errorf("CompactCache: %v", err)
				return
			}
			if err := cl.CompactDisk(st.Port()); err != nil {
				t.Errorf("CompactDisk: %v", err)
				return
			}
		}
	}()

	time.Sleep(500 * time.Millisecond)
	close(stop)
	wg.Wait()

	for i, f := range files {
		got, err := cl.Read(f)
		if err != nil || !bytes.Equal(got, payloads[i]) {
			t.Fatalf("file %d corrupt after churn: %v", i, err)
		}
	}
}

// TestGroupCommitOverWire drives concurrent small creates through a
// store with group commit enabled and verifies every file and the
// batching counters.
func TestGroupCommitOverWire(t *testing.T) {
	st, err := bulletfs.NewStore(bulletfs.StoreConfig{
		PortName: "gc-test", DiskMB: 16,
		GroupCommitWindow: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	defer st.Close() //nolint:errcheck // test cleanup
	addr, err := st.ServeTCP("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ServeTCP: %v", err)
	}
	resolver := rpc.StaticResolver(map[capability.Port]string{st.Port(): addr})
	tr := rpc.NewTCPTransport(resolver, 10*time.Second)
	defer tr.Close() //nolint:errcheck // test cleanup
	cl := client.New(tr)

	// One transport per worker: the pooled TCP transport serializes
	// requests per connection, and group commit only batches creates that
	// are actually concurrent at the server — i.e. from separate clients.
	const n = 32
	caps := make([]capability.Capability, n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			wtr := rpc.NewTCPTransport(resolver, 10*time.Second)
			defer wtr.Close() //nolint:errcheck // test cleanup
			caps[i], errs[i] = client.New(wtr).Create(st.Port(), []byte(fmt.Sprintf("file-%03d", i)), 1)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("Create %d: %v", i, errs[i])
		}
		got, err := cl.Read(caps[i])
		if err != nil || string(got) != fmt.Sprintf("file-%03d", i) {
			t.Fatalf("Read %d = %q, %v", i, got, err)
		}
	}
	// Batching happened: fewer sync rounds than creates.
	snap := st.Engine().Metrics().Snapshot()
	batches := snap.Gauges["disk.group_commit_batches"]
	entries := snap.Gauges["disk.group_commit_entries"]
	if entries != n {
		t.Fatalf("group_commit_entries = %d, want %d", entries, n)
	}
	if batches >= n {
		t.Fatalf("group_commit_batches = %d, want < %d (no batching happened)", batches, n)
	}
}
