package bulletfs_test

import (
	"errors"
	"testing"
	"time"

	"bulletfs/internal/bullet"
	"bulletfs/internal/bulletsvc"
	"bulletfs/internal/capability"
	"bulletfs/internal/client"
	"bulletfs/internal/disk"
	"bulletfs/internal/rpc"
	"bulletfs/internal/stats"
)

// watchWorld is a Bullet server with the telemetry collector attached,
// served over real TCP — WATCH is a long-lived multi-frame stream, and
// subscriber disconnect behaviour only exists on a real socket.
type watchWorld struct {
	engine    *bullet.Server
	collector *stats.Collector
	addr      string
}

func newWatchWorld(t *testing.T, interval time.Duration) *watchWorld {
	t.Helper()
	var devs []disk.Device
	for i := 0; i < 2; i++ {
		mem, err := disk.NewMem(512, (8<<20)/512)
		if err != nil {
			t.Fatalf("NewMem: %v", err)
		}
		devs = append(devs, mem)
	}
	set, err := disk.NewReplicaSet(devs...)
	if err != nil {
		t.Fatalf("NewReplicaSet: %v", err)
	}
	if err := bullet.Format(set, 100); err != nil {
		t.Fatalf("Format: %v", err)
	}
	engine, err := bullet.New(set, bullet.Options{CacheBytes: 1 << 20})
	if err != nil {
		t.Fatalf("bullet.New: %v", err)
	}
	t.Cleanup(func() { engine.Close() }) //nolint:errcheck // test cleanup

	collector := stats.NewCollector(engine.Metrics(), interval, 32)
	collector.Start()
	t.Cleanup(collector.Close)

	mux := rpc.NewMux(0)
	mux.AttachMetrics(engine.Metrics(), bulletsvc.CommandName)
	svc := bulletsvc.New(engine)
	svc.AttachCollector(collector)
	svc.Register(mux)
	srv := rpc.NewTCPServer(mux)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { srv.Close() }) //nolint:errcheck // test cleanup
	return &watchWorld{engine: engine, collector: collector, addr: addr}
}

// dial returns a WATCH-capable client: no transaction deadline, so the
// stream can run as long as the test wants.
func (w *watchWorld) dial(t *testing.T) *client.Client {
	t.Helper()
	tr := rpc.NewTCPTransport(rpc.StaticResolver(map[capability.Port]string{w.engine.Port(): w.addr}), 0)
	t.Cleanup(func() { tr.Close() }) //nolint:errcheck // test cleanup
	return client.New(tr, client.WithTraceIDs())
}

func TestWatchStreamsUpdatesOverWire(t *testing.T) {
	w := newWatchWorld(t, 20*time.Millisecond)
	cl := w.dial(t)
	cp, err := cl.Create(w.engine.Port(), []byte("watched"), 1)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}

	// Background traffic so the windows have movement.
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		rcl := w.dial(t)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := rcl.Read(cp); err != nil {
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	defer func() { close(stop); <-done }()

	var updates []stats.Update
	err = cl.Watch(cp, 3, func(u stats.Update) error {
		updates = append(updates, u)
		return nil
	})
	if err != nil {
		t.Fatalf("Watch: %v", err)
	}
	if len(updates) != 3 {
		t.Fatalf("got %d updates, want 3", len(updates))
	}
	for i := 1; i < len(updates); i++ {
		if updates[i].Seq != updates[i-1].Seq+1 {
			t.Fatalf("seq gap: %d then %d", updates[i-1].Seq, updates[i].Seq)
		}
	}
	last := updates[len(updates)-1]
	if last.Counters["rpc.read.requests"].Total == 0 {
		t.Fatal("watch updates never saw the read traffic")
	}
	if _, ok := last.Histograms["rpc.read.latency_ns"]; !ok {
		t.Fatal("watch update missing the read latency window")
	}
	if last.IntervalNS <= 0 {
		t.Fatalf("interval_ns = %d, want > 0", last.IntervalNS)
	}
}

func TestWatchRequiresReadRight(t *testing.T) {
	w := newWatchWorld(t, 10*time.Millisecond)
	cl := w.dial(t)
	cp, err := cl.Create(w.engine.Port(), []byte("x"), 1)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	weak, err := capability.Restrict(cp, capability.RightDelete)
	if err != nil {
		t.Fatalf("Restrict: %v", err)
	}
	err = cl.Watch(weak, 1, func(stats.Update) error { return nil })
	if !errors.Is(err, capability.ErrBadRights) {
		t.Fatalf("Watch without read right: err = %v, want ErrBadRights", err)
	}
}

func TestWatchWithoutCollectorIsBadCommand(t *testing.T) {
	// A service with no collector attached must refuse WATCH outright,
	// like TRACE without a recorder.
	st, cl := newWireStore(t)
	cp, err := cl.Create(st.Port(), []byte("x"), 1)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	err = cl.Watch(cp, 1, func(stats.Update) error { return nil })
	if err == nil {
		t.Fatal("Watch succeeded on a server without a collector")
	}
}

func TestWatchSubscriberDisconnectMidStream(t *testing.T) {
	w := newWatchWorld(t, 10*time.Millisecond)
	cl := w.dial(t)
	cp, err := cl.Create(w.engine.Port(), []byte("x"), 1)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}

	// Unbounded watch, aborted client-side after two updates: the sink
	// error drops the TCP connection, which is how a real watcher dies.
	wantErr := errors.New("enough")
	n := 0
	err = cl.Watch(cp, 0, func(u stats.Update) error {
		n++
		if n >= 2 {
			return wantErr
		}
		return nil
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("Watch err = %v, want the sink abort", err)
	}

	// The server notices on its next push into the dead socket and tears
	// the subscription down; the collector's watcher count must return to
	// zero (no leaked subscription goroutines).
	deadline := time.After(5 * time.Second)
	for w.collector.Watchers() != 0 {
		select {
		case <-deadline:
			t.Fatalf("server still has %d watchers after client disconnect", w.collector.Watchers())
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func TestWatchEndsCleanlyOnCollectorClose(t *testing.T) {
	w := newWatchWorld(t, 10*time.Millisecond)
	cl := w.dial(t)
	cp, err := cl.Create(w.engine.Port(), []byte("x"), 1)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	got := make(chan error, 1)
	started := make(chan struct{})
	go func() {
		first := true
		got <- cl.Watch(cp, 0, func(stats.Update) error {
			if first {
				close(started)
				first = false
			}
			return nil
		})
	}()
	select {
	case <-started:
	case err := <-got:
		t.Fatalf("watch ended before first update: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("no first update within 5s")
	}
	w.collector.Close()
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("watch after collector close: %v, want clean end", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watch did not end after collector close")
	}
}

func TestWatchAssembledFallback(t *testing.T) {
	// Over a single-reply transport (LocalID) the frames arrive
	// concatenated; a bounded watch still decodes them all, and an
	// unbounded one is refused up front.
	var devs []disk.Device
	for i := 0; i < 2; i++ {
		mem, err := disk.NewMem(512, (8<<20)/512)
		if err != nil {
			t.Fatalf("NewMem: %v", err)
		}
		devs = append(devs, mem)
	}
	set, err := disk.NewReplicaSet(devs...)
	if err != nil {
		t.Fatalf("NewReplicaSet: %v", err)
	}
	if err := bullet.Format(set, 100); err != nil {
		t.Fatalf("Format: %v", err)
	}
	engine, err := bullet.New(set, bullet.Options{CacheBytes: 1 << 20})
	if err != nil {
		t.Fatalf("bullet.New: %v", err)
	}
	t.Cleanup(func() { engine.Close() }) //nolint:errcheck // test cleanup
	collector := stats.NewCollector(engine.Metrics(), 10*time.Millisecond, 32)
	collector.Start()
	t.Cleanup(collector.Close)
	mux := rpc.NewMux(0)
	svc := bulletsvc.New(engine)
	svc.AttachCollector(collector)
	svc.Register(mux)
	cl := client.New(&rpc.LocalID{Mux: mux})

	cp, err := cl.Create(engine.Port(), []byte("x"), 1)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	var n int
	if err := cl.Watch(cp, 2, func(stats.Update) error { n++; return nil }); err != nil {
		t.Fatalf("bounded assembled watch: %v", err)
	}
	if n != 2 {
		t.Fatalf("decoded %d assembled updates, want 2", n)
	}
	if err := cl.Watch(cp, 0, func(stats.Update) error { return nil }); !errors.Is(err, client.ErrWatchUnbounded) {
		t.Fatalf("unbounded assembled watch err = %v, want ErrWatchUnbounded", err)
	}
}
