// Command dirctl is the command-line client of a dird directory server:
// it gives Bullet capabilities human names, resolves paths, and browses
// version history.
//
//	dirctl -server localhost:7002 ls /
//	dirctl -server localhost:7002 mkdir /projects
//	dirctl -server localhost:7002 enter /projects/report.txt <capability>
//	dirctl -server localhost:7002 replace /projects/report.txt <capability>
//	dirctl -server localhost:7002 lookup /projects/report.txt
//	dirctl -server localhost:7002 history /projects/report.txt
//	dirctl -server localhost:7002 rm /projects/report.txt
//
// Combined with bulletctl this is a complete shell workflow:
//
//	CAP=$(bulletctl put report.txt)
//	dirctl enter /report.txt "$CAP"
//	bulletctl get "$(dirctl lookup /report.txt)"
package main

import (
	"flag"
	"fmt"
	"os"
	"path"
	"strings"
	"time"

	"bulletfs/internal/capability"
	"bulletfs/internal/directory"
	"bulletfs/internal/rpc"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dirctl:", err)
		os.Exit(1)
	}
}

func usage() error {
	return fmt.Errorf("usage: dirctl [-server addr] [-port name] <ls|mkdir|enter|replace|lookup|history|rm> args...")
}

func run() error {
	var (
		server = flag.String("server", "localhost:7002", "dird TCP address")
		port   = flag.String("port", "directory", "service name of the directory server's port")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		return usage()
	}

	p := capability.PortFromString(*port)
	tr := rpc.NewTCPTransport(rpc.StaticResolver(map[capability.Port]string{p: *server}), 30*time.Second)
	defer tr.Close() //nolint:errcheck // process exit
	dc := directory.NewClient(tr)
	root, err := dc.Root(p)
	if err != nil {
		return fmt.Errorf("fetching root: %w", err)
	}

	// splitPath resolves everything but the last component.
	splitPath := func(pth string, mkdirs bool) (capability.Capability, string, error) {
		pth = path.Clean("/" + pth)
		if pth == "/" {
			return capability.Capability{}, "", fmt.Errorf("path %q has no final component", pth)
		}
		dirPart, name := path.Split(pth)
		dirPart = strings.Trim(dirPart, "/")
		var parent capability.Capability
		var err error
		if mkdirs {
			parent, err = dc.MkdirPath(root, dirPart)
		} else {
			parent, err = dc.LookupPath(root, dirPart)
		}
		return parent, name, err
	}

	switch args[0] {
	case "ls":
		target := "/"
		if len(args) > 1 {
			target = args[1]
		}
		dir, err := dc.LookupPath(root, target)
		if err != nil {
			return err
		}
		rows, err := dc.List(dir)
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Printf("%-30s %s\n", r.Name, r.Cap)
		}
		return nil

	case "mkdir":
		if len(args) != 2 {
			return fmt.Errorf("usage: dirctl mkdir <path>")
		}
		if _, err := dc.MkdirPath(root, args[1]); err != nil {
			return err
		}
		return nil

	case "enter", "replace":
		if len(args) != 3 {
			return fmt.Errorf("usage: dirctl %s <path> <capability>", args[0])
		}
		target, err := capability.Parse(args[2])
		if err != nil {
			return err
		}
		parent, name, err := splitPath(args[1], args[0] == "enter")
		if err != nil {
			return err
		}
		if args[0] == "enter" {
			return dc.Enter(parent, name, target)
		}
		return dc.Replace(parent, name, target)

	case "lookup":
		if len(args) != 2 {
			return fmt.Errorf("usage: dirctl lookup <path>")
		}
		c, err := dc.LookupPath(root, args[1])
		if err != nil {
			return err
		}
		fmt.Println(c)
		return nil

	case "history":
		if len(args) != 2 {
			return fmt.Errorf("usage: dirctl history <path>")
		}
		parent, name, err := splitPath(args[1], false)
		if err != nil {
			return err
		}
		caps, err := dc.History(parent, name)
		if err != nil {
			return err
		}
		for i, c := range caps {
			fmt.Printf("v%d %s\n", i+1, c)
		}
		return nil

	case "rm":
		if len(args) != 2 {
			return fmt.Errorf("usage: dirctl rm <path>")
		}
		parent, name, err := splitPath(args[1], false)
		if err != nil {
			return err
		}
		return dc.Remove(parent, name)

	default:
		return usage()
	}
}
