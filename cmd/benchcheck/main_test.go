package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bulletfs/internal/bench"
)

func results(values map[string]float64) *bench.Results {
	r := bench.NewResults()
	for k, v := range values {
		r.Values[k] = v
	}
	return r
}

func TestCompareClean(t *testing.T) {
	base := results(map[string]float64{"f2.delay/1_byte/Read": 2.0, "check/C1": 1})
	cur := results(map[string]float64{"f2.delay/1_byte/Read": 2.2, "check/C1": 1})
	failures, notes := compare(base, cur, 0.25, nil)
	if len(failures) != 0 {
		t.Fatalf("unexpected failures: %v", failures)
	}
	if len(notes) != 0 {
		t.Fatalf("unexpected notes: %v", notes)
	}
}

func TestCompareDriftBeyondTolerance(t *testing.T) {
	base := results(map[string]float64{"f2.delay/1_byte/Read": 2.0})
	cur := results(map[string]float64{"f2.delay/1_byte/Read": 3.0})
	failures, _ := compare(base, cur, 0.25, nil)
	if len(failures) != 1 || !strings.Contains(failures[0], "drift") {
		t.Fatalf("want one drift failure, got %v", failures)
	}
}

func TestCompareCheckKeyExact(t *testing.T) {
	// A flipped check fails even though 0 vs 1 could be "within
	// tolerance" of nothing; tolerance must not apply.
	base := results(map[string]float64{"check/C2": 1})
	cur := results(map[string]float64{"check/C2": 0})
	failures, _ := compare(base, cur, 10.0, nil)
	if len(failures) != 1 || !strings.Contains(failures[0], "flipped") {
		t.Fatalf("want one flipped-check failure, got %v", failures)
	}
}

func TestCompareMissingKeyFails(t *testing.T) {
	base := results(map[string]float64{"wan/1_Mbyte/whole": 5.0})
	cur := results(map[string]float64{})
	failures, _ := compare(base, cur, 0.25, nil)
	if len(failures) != 1 || !strings.Contains(failures[0], "missing") {
		t.Fatalf("want one missing-key failure, got %v", failures)
	}
}

func TestCompareNewKeyIsNoteOnly(t *testing.T) {
	base := results(map[string]float64{})
	cur := results(map[string]float64{"modern/1_byte/Read": 0.5})
	failures, notes := compare(base, cur, 0.25, nil)
	if len(failures) != 0 {
		t.Fatalf("unexpected failures: %v", failures)
	}
	if len(notes) != 1 || !strings.Contains(notes[0], "new key") {
		t.Fatalf("want one new-key note, got %v", notes)
	}
}

func TestCompareOneSidedImprovementPasses(t *testing.T) {
	// A latency cell halving is an improvement: one-sided gating must not
	// fail it (the default two-sided band would), only note it.
	base := results(map[string]float64{"slo.steady/80_ops/p99_ms": 800.0})
	cur := results(map[string]float64{"slo.steady/80_ops/p99_ms": 400.0})
	oneSided := parseOneSided("/p99_ms,/shed_pct")
	failures, notes := compare(base, cur, 0.25, oneSided)
	if len(failures) != 0 {
		t.Fatalf("improvement failed the gate: %v", failures)
	}
	if len(notes) != 1 || !strings.Contains(notes[0], "improved") {
		t.Fatalf("want one improvement note, got %v", notes)
	}
}

func TestCompareOneSidedRegressionFails(t *testing.T) {
	base := results(map[string]float64{"slo.steady/80_ops/p99_ms": 800.0})
	cur := results(map[string]float64{"slo.steady/80_ops/p99_ms": 1100.0})
	failures, _ := compare(base, cur, 0.25, parseOneSided("/p99_ms"))
	if len(failures) != 1 || !strings.Contains(failures[0], "regressed") {
		t.Fatalf("want one regression failure, got %v", failures)
	}
	// Upward drift inside the band still passes.
	cur = results(map[string]float64{"slo.steady/80_ops/p99_ms": 900.0})
	if failures, _ := compare(base, cur, 0.25, parseOneSided("/p99_ms")); len(failures) != 0 {
		t.Fatalf("in-band upward drift failed: %v", failures)
	}
}

func TestCompareOneSidedLeavesOtherKeysTwoSided(t *testing.T) {
	// achieved_ops is higher-is-better: it must stay under the two-sided
	// band even when one-sided matchers are active for latency cells.
	base := results(map[string]float64{"slo.steady/80_ops/achieved_ops": 50.0})
	cur := results(map[string]float64{"slo.steady/80_ops/achieved_ops": 20.0})
	failures, _ := compare(base, cur, 0.25, parseOneSided("/p99_ms,/shed_pct"))
	if len(failures) != 1 || !strings.Contains(failures[0], "drift") {
		t.Fatalf("want one two-sided drift failure, got %v", failures)
	}
}

func TestCompareOneSidedZeroBaselineShedGrowthFails(t *testing.T) {
	// shed_pct 0 in the baseline means "no sheds at this load"; any sheds
	// appearing is a regression no relative band can excuse.
	base := results(map[string]float64{"slo.steady/20_ops/shed_pct": 0})
	cur := results(map[string]float64{"slo.steady/20_ops/shed_pct": 3.0})
	failures, _ := compare(base, cur, 0.25, parseOneSided("/shed_pct"))
	if len(failures) != 1 {
		t.Fatalf("want one failure for sheds appearing from zero, got %v", failures)
	}
}

func TestParseOneSided(t *testing.T) {
	if got := parseOneSided(""); got != nil {
		t.Fatalf("empty flag = %v, want nil", got)
	}
	got := parseOneSided(" /p99_ms, /shed_pct ,,")
	if len(got) != 2 || got[0] != "/p99_ms" || got[1] != "/shed_pct" {
		t.Fatalf("parsed = %v", got)
	}
}

func TestWithinToleranceZeroBaseline(t *testing.T) {
	if !withinTolerance(0, 0, 0.25) {
		t.Fatal("0 vs 0 must pass")
	}
	if withinTolerance(0, 0.5, 0.25) {
		t.Fatal("0 -> 0.5 must fail: relative tolerance cannot excuse growth from zero")
	}
}

func TestReadResultsRoundTrip(t *testing.T) {
	r := results(map[string]float64{"f2.delay/1_byte/READ": 3.6, "check/C1": 1})
	path := filepath.Join(t.TempDir(), "r.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := r.WriteJSON(f); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	back, err := readResults(path)
	if err != nil {
		t.Fatalf("readResults: %v", err)
	}
	if back.Values["f2.delay/1_byte/READ"] != 3.6 || back.Values["check/C1"] != 1 {
		t.Fatalf("round trip lost values: %v", back.Values)
	}
	if _, err := readResults(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("readResults on a missing file must fail")
	}
}

func writeResultsFile(t *testing.T, values map[string]float64) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "results.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := results(values).WriteJSON(f); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return path
}

func TestRunExitCodes(t *testing.T) {
	base := writeResultsFile(t, map[string]float64{"f2.delay/1_byte/READ": 2.0, "check/C1": 1})
	same := writeResultsFile(t, map[string]float64{"f2.delay/1_byte/READ": 2.1, "check/C1": 1})
	drifted := writeResultsFile(t, map[string]float64{"f2.delay/1_byte/READ": 9.0, "check/C1": 1})

	var out, errOut strings.Builder
	if code := run([]string{"-baseline", base, "-current", same}, &out, &errOut); code != 0 {
		t.Errorf("clean compare: exit %d, want 0 (stdout %q)", code, out.String())
	}
	out.Reset()
	if code := run([]string{"-baseline", base, "-current", drifted}, &out, &errOut); code != 1 {
		t.Errorf("drifted compare: exit %d, want 1", code)
	}
	if !strings.Contains(out.String(), "FAIL:") {
		t.Errorf("drifted compare output missing FAIL line: %q", out.String())
	}
	if code := run([]string{"-baseline", "/does/not/exist.json", "-current", same}, &out, &errOut); code != 2 {
		t.Errorf("missing baseline: exit %d, want 2", code)
	}
	if code := run([]string{"-bogusflag"}, &out, &errOut); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
}
