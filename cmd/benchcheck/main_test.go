package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bulletfs/internal/bench"
)

func results(values map[string]float64) *bench.Results {
	r := bench.NewResults()
	for k, v := range values {
		r.Values[k] = v
	}
	return r
}

func TestCompareClean(t *testing.T) {
	base := results(map[string]float64{"f2.delay/1_byte/Read": 2.0, "check/C1": 1})
	cur := results(map[string]float64{"f2.delay/1_byte/Read": 2.2, "check/C1": 1})
	failures, notes := compare(base, cur, 0.25)
	if len(failures) != 0 {
		t.Fatalf("unexpected failures: %v", failures)
	}
	if len(notes) != 0 {
		t.Fatalf("unexpected notes: %v", notes)
	}
}

func TestCompareDriftBeyondTolerance(t *testing.T) {
	base := results(map[string]float64{"f2.delay/1_byte/Read": 2.0})
	cur := results(map[string]float64{"f2.delay/1_byte/Read": 3.0})
	failures, _ := compare(base, cur, 0.25)
	if len(failures) != 1 || !strings.Contains(failures[0], "drift") {
		t.Fatalf("want one drift failure, got %v", failures)
	}
}

func TestCompareCheckKeyExact(t *testing.T) {
	// A flipped check fails even though 0 vs 1 could be "within
	// tolerance" of nothing; tolerance must not apply.
	base := results(map[string]float64{"check/C2": 1})
	cur := results(map[string]float64{"check/C2": 0})
	failures, _ := compare(base, cur, 10.0)
	if len(failures) != 1 || !strings.Contains(failures[0], "flipped") {
		t.Fatalf("want one flipped-check failure, got %v", failures)
	}
}

func TestCompareMissingKeyFails(t *testing.T) {
	base := results(map[string]float64{"wan/1_Mbyte/whole": 5.0})
	cur := results(map[string]float64{})
	failures, _ := compare(base, cur, 0.25)
	if len(failures) != 1 || !strings.Contains(failures[0], "missing") {
		t.Fatalf("want one missing-key failure, got %v", failures)
	}
}

func TestCompareNewKeyIsNoteOnly(t *testing.T) {
	base := results(map[string]float64{})
	cur := results(map[string]float64{"modern/1_byte/Read": 0.5})
	failures, notes := compare(base, cur, 0.25)
	if len(failures) != 0 {
		t.Fatalf("unexpected failures: %v", failures)
	}
	if len(notes) != 1 || !strings.Contains(notes[0], "new key") {
		t.Fatalf("want one new-key note, got %v", notes)
	}
}

func TestWithinToleranceZeroBaseline(t *testing.T) {
	if !withinTolerance(0, 0, 0.25) {
		t.Fatal("0 vs 0 must pass")
	}
	if withinTolerance(0, 0.5, 0.25) {
		t.Fatal("0 -> 0.5 must fail: relative tolerance cannot excuse growth from zero")
	}
}

func TestReadResultsRoundTrip(t *testing.T) {
	r := results(map[string]float64{"f2.delay/1_byte/READ": 3.6, "check/C1": 1})
	path := filepath.Join(t.TempDir(), "r.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := r.WriteJSON(f); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	back, err := readResults(path)
	if err != nil {
		t.Fatalf("readResults: %v", err)
	}
	if back.Values["f2.delay/1_byte/READ"] != 3.6 || back.Values["check/C1"] != 1 {
		t.Fatalf("round trip lost values: %v", back.Values)
	}
	if _, err := readResults(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("readResults on a missing file must fail")
	}
}

func writeResultsFile(t *testing.T, values map[string]float64) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "results.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := results(values).WriteJSON(f); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return path
}

func TestRunExitCodes(t *testing.T) {
	base := writeResultsFile(t, map[string]float64{"f2.delay/1_byte/READ": 2.0, "check/C1": 1})
	same := writeResultsFile(t, map[string]float64{"f2.delay/1_byte/READ": 2.1, "check/C1": 1})
	drifted := writeResultsFile(t, map[string]float64{"f2.delay/1_byte/READ": 9.0, "check/C1": 1})

	var out, errOut strings.Builder
	if code := run([]string{"-baseline", base, "-current", same}, &out, &errOut); code != 0 {
		t.Errorf("clean compare: exit %d, want 0 (stdout %q)", code, out.String())
	}
	out.Reset()
	if code := run([]string{"-baseline", base, "-current", drifted}, &out, &errOut); code != 1 {
		t.Errorf("drifted compare: exit %d, want 1", code)
	}
	if !strings.Contains(out.String(), "FAIL:") {
		t.Errorf("drifted compare output missing FAIL line: %q", out.String())
	}
	if code := run([]string{"-baseline", "/does/not/exist.json", "-current", same}, &out, &errOut); code != 2 {
		t.Errorf("missing baseline: exit %d, want 2", code)
	}
	if code := run([]string{"-bogusflag"}, &out, &errOut); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
}
