// Command benchcheck is the CI benchmark-regression gate: it compares a
// fresh benchmark results document (cmd/benchmark -json) against the
// committed baseline and fails when the run drifted.
//
//	benchcheck -baseline bench_baseline.json -current BENCH_RESULTS.json
//
// Rules:
//
//   - "check/..." keys are the paper's pass/fail shape claims; they must
//     match the baseline exactly — a claim that flipped is a regression no
//     tolerance can excuse.
//
//   - Every other key is a table cell (delay, bandwidth, ratio); the
//     current value must be within -tolerance (default 0.25, i.e. ±25%
//     relative) of the baseline. The experiments run on a virtual clock,
//     so genuine nondeterminism is zero; the band absorbs deliberate
//     hardware-model recalibration without masking structural regressions.
//
//   - Keys present in the baseline but missing from the current run fail:
//     a silently vanished experiment must not look like a pass.
//
//   - New keys (experiments added since the baseline) are reported but do
//     not fail; refresh the baseline to start gating them.
//
//   - -one-sided takes comma-separated key substrings naming lower-is-better
//     metrics (latency quantiles, shed rates): a matching cell fails only
//     when it drifts UP past the tolerance — improvements pass free, and
//     never force a baseline refresh. The SLO job gates its tail-latency
//     cells this way:
//
//     benchcheck -baseline slo_baseline.json -current SLO_RESULTS.json \
//     -one-sided "/p50_ms,/p99_ms,/p999_ms,/max_ms,/shed_pct"
//
// Exit status: 0 clean, 1 regression, 2 usage or I/O error.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"bulletfs/internal/bench"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main minus the process boundary, so tests can drive it.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		baselinePath = fs.String("baseline", "bench_baseline.json", "committed baseline results")
		currentPath  = fs.String("current", "BENCH_RESULTS.json", "fresh benchmark results")
		tolerance    = fs.Float64("tolerance", 0.25, "allowed relative drift for table cells (0.25 = ±25%)")
		oneSided     = fs.String("one-sided", "", "comma-separated key substrings of lower-is-better metrics: fail only on upward drift")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	baseline, err := readResults(*baselinePath)
	if err != nil {
		fmt.Fprintln(stderr, "benchcheck:", err)
		return 2
	}
	current, err := readResults(*currentPath)
	if err != nil {
		fmt.Fprintln(stderr, "benchcheck:", err)
		return 2
	}

	failures, notes := compare(baseline, current, *tolerance, parseOneSided(*oneSided))
	for _, n := range notes {
		fmt.Fprintln(stdout, "note:", n)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(stdout, "FAIL:", f)
		}
		fmt.Fprintf(stdout, "benchcheck: %d regression(s) against %s\n", len(failures), *baselinePath)
		return 1
	}
	fmt.Fprintf(stdout, "benchcheck: %d keys within ±%.0f%% of %s\n",
		len(baseline.Values), *tolerance*100, *baselinePath)
	return 0
}

func readResults(path string) (*bench.Results, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading %s: %w", path, err)
	}
	return bench.ReadResults(data)
}

// parseOneSided splits the -one-sided flag into its substring matchers.
func parseOneSided(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// isOneSided reports whether key matches any lower-is-better substring.
func isOneSided(key string, matchers []string) bool {
	for _, m := range matchers {
		if strings.Contains(key, m) {
			return true
		}
	}
	return false
}

// compare evaluates current against baseline: exact match for "check/"
// keys, relative tolerance for everything else. Cells matching a oneSided
// substring are lower-is-better: only upward drift past the tolerance
// fails, improvements pass free (and are noted so a refresh can re-tighten
// the bar). It returns hard failures and informational notes (new keys not
// yet in the baseline, one-sided improvements).
func compare(baseline, current *bench.Results, tolerance float64, oneSided []string) (failures, notes []string) {
	for _, k := range baseline.Keys() {
		want := baseline.Values[k]
		got, ok := current.Values[k]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from current run (baseline %g)", k, want))
			continue
		}
		if isCheckKey(k) {
			if got != want {
				failures = append(failures, fmt.Sprintf("%s: shape check flipped %g -> %g", k, want, got))
			}
			continue
		}
		if isOneSided(k, oneSided) {
			if withinTolerance(want, got, tolerance) {
				continue
			}
			if got < want {
				notes = append(notes, fmt.Sprintf("%s: improved %g -> %g (one-sided, not gated; refresh the baseline to lock it in)", k, want, got))
				continue
			}
			failures = append(failures, fmt.Sprintf("%s: %g -> %g (regressed %.1f%%, allowed +%.0f%%, lower is better)",
				k, want, got, 100*relDrift(want, got), tolerance*100))
			continue
		}
		if !withinTolerance(want, got, tolerance) {
			failures = append(failures, fmt.Sprintf("%s: %g -> %g (drift %.1f%%, allowed ±%.0f%%)",
				k, want, got, 100*relDrift(want, got), tolerance*100))
		}
	}
	for _, k := range current.Keys() {
		if _, ok := baseline.Values[k]; !ok {
			notes = append(notes, fmt.Sprintf("%s: new key, not gated (refresh the baseline to gate it)", k))
		}
	}
	return failures, notes
}

func isCheckKey(k string) bool {
	return len(k) > 6 && k[:6] == "check/"
}

// withinTolerance reports whether got is within the relative band around
// want. Near-zero baselines compare absolutely against a small epsilon —
// a 0.00 ms cell must stay ~0, not "within 25% of 0".
func withinTolerance(want, got, tolerance float64) bool {
	const epsilon = 1e-9
	if math.Abs(want) < epsilon {
		return math.Abs(got) < epsilon
	}
	return relDrift(want, got) <= tolerance
}

func relDrift(want, got float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(got-want) / math.Abs(want)
}
