// Command dird runs the directory server, persisting its state as
// immutable checkpoints on a bulletd server. Only the latest checkpoint
// capability is kept locally (in -state).
//
//	dird -bullet localhost:7001 -state /var/bullet/dird.state -listen :7002
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"bulletfs/internal/capability"
	"bulletfs/internal/client"
	"bulletfs/internal/directory"
	"bulletfs/internal/rpc"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dird:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		bulletAddr = flag.String("bullet", "localhost:7001", "bulletd TCP address (checkpoint store)")
		bulletPort = flag.String("bullet-port", "bullet", "bulletd service name")
		statePath  = flag.String("state", "dird.state", "file holding the latest checkpoint capability")
		listen     = flag.String("listen", ":7002", "TCP listen address")
		port       = flag.String("port", "directory", "service name the capability port derives from")
		pfactor    = flag.Int("pfactor", 1, "paranoia factor for checkpoint writes")
	)
	flag.Parse()

	bp := capability.PortFromString(*bulletPort)
	tr := rpc.NewTCPTransport(rpc.StaticResolver(map[capability.Port]string{bp: *bulletAddr}), 30*time.Second)
	defer tr.Close() //nolint:errcheck // process exit
	store := client.New(tr)

	opts := directory.Options{
		Port:      capability.PortFromString(*port),
		Store:     store,
		StorePort: bp,
		PFactor:   *pfactor,
	}
	if raw, err := os.ReadFile(*statePath); err == nil {
		state, err := capability.Parse(strings.TrimSpace(string(raw)))
		if err != nil {
			return fmt.Errorf("parsing %s: %w", *statePath, err)
		}
		opts.State = state
		fmt.Printf("restoring from checkpoint %s\n", state)
	} else if !os.IsNotExist(err) {
		return err
	}

	srv, err := directory.New(opts)
	if err != nil {
		return err
	}
	saveState := func() error {
		return os.WriteFile(*statePath, []byte(srv.StateCap().String()+"\n"), 0o600)
	}
	if err := saveState(); err != nil {
		return err
	}

	mux := rpc.NewMux(0)
	srv.Register(mux)
	tcp := rpc.NewTCPServer(mux)
	addr, err := tcp.Listen(*listen)
	if err != nil {
		return err
	}
	fmt.Printf("dird serving on %s\n", addr)
	fmt.Printf("capability port: %x (service name %q)\n", srv.Port(), *port)
	fmt.Printf("root directory: %s\n", srv.Root())
	fmt.Printf("%d directories\n", srv.DirCount())

	// Persist the checkpoint pointer periodically and on shutdown: the
	// directory server checkpoints to Bullet on every mutation, so the
	// local file only needs to track the latest capability.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(2 * time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			if err := saveState(); err != nil {
				return err
			}
		case <-sig:
			fmt.Println("shutting down")
			if err := tcp.Close(); err != nil {
				return err
			}
			return saveState()
		}
	}
}
