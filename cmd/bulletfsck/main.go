// Command bulletfsck checks (and optionally repairs) a Bullet disk image
// offline — the §3 startup consistency scan as an operator tool: files
// must lie inside the data area and must not overlap; inconsistent inodes
// are zeroed.
//
//	bulletfsck disk0.img              # report only
//	bulletfsck -repair disk0.img      # persist the fixes
//	bulletfsck -repair d0.img d1.img  # check each replica
package main

import (
	"flag"
	"fmt"
	"os"

	"bulletfs/internal/alloc"
	"bulletfs/internal/disk"
	"bulletfs/internal/layout"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bulletfsck:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		repair    = flag.Bool("repair", false, "write fixes back to the image")
		blockSize = flag.Int("blocksize", 512, "sector size of the image")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		return fmt.Errorf("usage: bulletfsck [-repair] <image> [image...]")
	}
	exit := 0
	for _, path := range flag.Args() {
		if err := checkImage(path, *blockSize, *repair); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			exit = 1
		}
	}
	if exit != 0 {
		os.Exit(exit)
	}
	return nil
}

func checkImage(path string, blockSize int, repair bool) error {
	var dev disk.Device
	var err error
	if repair {
		dev, err = disk.OpenFile(path, blockSize)
	} else {
		// Load a read-only copy into RAM so a plain check never touches
		// the image.
		dev, err = loadReadOnly(path, blockSize)
	}
	if err != nil {
		return err
	}
	defer dev.Close() //nolint:errcheck // process exit

	table, report, err := layout.Load(dev)
	if err != nil {
		return err
	}
	desc := table.Desc()
	fmt.Printf("%s: %d-byte blocks, %d inode-table blocks, %d data blocks\n",
		path, desc.BlockSize, desc.CtrlSize, desc.DataSize)
	fmt.Printf("%s: %d live files, %d free inodes\n", path, report.Live, report.Free)

	var used []alloc.Extent
	table.ForEachUsed(func(_ uint32, ino layout.Inode) {
		used = append(used, alloc.Extent{Start: int64(ino.FirstBlock), Count: ino.Blocks(desc.BlockSize)})
	})
	if a, err := alloc.NewFromUsed(desc.DataSize, used); err == nil {
		st := a.Stats()
		fmt.Printf("%s: %d/%d data blocks used, fragmentation %.1f%%, largest hole %d blocks\n",
			path, st.Used, st.Total, 100*st.Fragmentation(), st.LargestFree)
	}

	if len(report.Problems) == 0 {
		fmt.Printf("%s: clean\n", path)
		return nil
	}
	for _, p := range report.Problems {
		fmt.Printf("%s: inode %d: %s\n", path, p.Inode, p.Reason)
	}
	if !repair {
		return fmt.Errorf("%d problems found (run with -repair to fix)", len(report.Problems))
	}
	for _, p := range report.Problems {
		if err := table.WriteInode(dev, p.Inode); err != nil {
			return fmt.Errorf("repairing inode %d: %w", p.Inode, err)
		}
	}
	if err := dev.Sync(); err != nil {
		return err
	}
	fmt.Printf("%s: %d problems repaired\n", path, len(report.Problems))
	return nil
}

// loadReadOnly copies an image file into a RAM disk.
func loadReadOnly(path string, blockSize int) (disk.Device, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) == 0 || len(raw)%blockSize != 0 {
		return nil, fmt.Errorf("image size %d is not a multiple of block size %d", len(raw), blockSize)
	}
	mem, err := disk.NewMem(blockSize, int64(len(raw)/blockSize))
	if err != nil {
		return nil, err
	}
	if err := mem.WriteAt(raw, 0); err != nil {
		return nil, err
	}
	return mem, nil
}
