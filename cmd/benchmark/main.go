// Command benchmark regenerates every table and figure of the paper's
// evaluation (§4) plus the ablations, on the virtual clock. Run with no
// flags for everything, or select one experiment:
//
//	benchmark -experiment f2        # Fig. 2: Bullet delay/bandwidth
//	benchmark -experiment f3        # Fig. 3: SUN NFS delay/bandwidth
//	benchmark -experiment compare   # §4 comparison claims C1-C4
//	benchmark -experiment ablation  # A1: layout ablation, same hardware
//	benchmark -experiment pfactor   # A2: paranoia-factor sweep
//	benchmark -experiment frag      # A3: fragmentation + compaction
//	benchmark -experiment cache     # A4: RAM cache under pressure
//	benchmark -experiment modern    # what-if: both designs on 2020s hardware
//	benchmark -experiment trace     # trace replay with the paper's size mix
//	benchmark -experiment wan       # whole-file vs per-block across a WAN link
//	benchmark -experiment parallel  # concurrent read path: deterministic counters
//	benchmark -experiment zerocopy  # zero-copy reply path: payload-copy counters
//	benchmark -experiment groupcommit # group-committed creates: write/fan-out counters
//
// The open-loop SLO harness is its own mode (not part of -experiment all;
// CI gates it against a separate baseline):
//
//	benchmark -slo                  # offered load x tail-latency SLO table
//	benchmark -slo -json > SLO_RESULTS.json
//
// With -json the run writes a flat machine-readable results document to
// stdout (every table cell and check verdict under a stable key) instead
// of the human tables — the input of cmd/benchcheck's CI regression gate:
//
//	benchmark -json > BENCH_RESULTS.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"bulletfs/internal/bench"
)

func main() {
	experiment := flag.String("experiment", "all",
		"experiment to run: all, f2, f3, compare, ablation, pfactor, frag, cache, modern, trace, wan, parallel, zerocopy, groupcommit")
	asJSON := flag.Bool("json", false, "emit machine-readable results JSON on stdout instead of tables")
	slo := flag.Bool("slo", false, "run the open-loop SLO harness instead of the paper experiments")
	flag.Parse()
	if *slo {
		*experiment = "slo"
	}
	if err := run(*experiment, *asJSON, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchmark:", err)
		os.Exit(1)
	}
}

func run(experiment string, asJSON bool, stdout io.Writer) error {
	results := bench.NewResults()
	var failed bool

	// In JSON mode stdout carries only the results document; the human
	// tables are suppressed rather than redirected (the JSON holds every
	// cell anyway).
	emit := func(s string) {
		if !asJSON {
			fmt.Fprintln(stdout, s)
		}
	}
	note := func(checks []bench.Check) {
		results.AddChecks(checks)
		for _, c := range checks {
			emit(c.Format())
			if !c.Pass {
				failed = true
			}
		}
	}

	// The SLO harness is deliberately not part of "all": its cells live in
	// a separate baseline (slo_baseline.json) gated by a dedicated CI job,
	// and mixing them into the paper-table document would make each job
	// fail the other's missing keys.
	if experiment == "slo" {
		slo, err := bench.RunSLO()
		if err != nil {
			return err
		}
		results.AddTable("slo.steady", &slo.Steady)
		results.AddTable("slo.chaos", &slo.Chaos)
		results.AddTable("slo.brownout", &slo.Brownout)
		emit(slo.Steady.Format())
		emit(slo.Chaos.Format())
		emit(slo.Brownout.Format())
		note(slo.Checks)
		if asJSON {
			if err := results.WriteJSON(stdout); err != nil {
				return err
			}
		}
		if failed {
			return fmt.Errorf("one or more SLO checks failed")
		}
		return nil
	}

	wantF2 := experiment == "all" || experiment == "f2" || experiment == "compare"
	wantF3 := experiment == "all" || experiment == "f3" || experiment == "compare"

	var f2 *bench.F2Result
	var f3 *bench.F3Result
	var err error
	if wantF2 {
		if f2, err = bench.RunF2(); err != nil {
			return err
		}
		results.AddTable("f2.delay", &f2.Delay)
		results.AddTable("f2.bandwidth", &f2.Bandwidth)
		if experiment != "compare" {
			emit(f2.Delay.Format())
			emit(f2.Bandwidth.Format())
		}
	}
	if wantF3 {
		if f3, err = bench.RunF3(); err != nil {
			return err
		}
		results.AddTable("f3.delay", &f3.Delay)
		results.AddTable("f3.bandwidth", &f3.Bandwidth)
		if experiment != "compare" {
			emit(f3.Delay.Format())
			emit(f3.Bandwidth.Format())
		}
	}
	if experiment == "all" || experiment == "compare" {
		cmp := bench.RunCompare(f2, f3)
		results.AddTable("compare.ratios", &cmp.Ratios)
		emit(cmp.Ratios.Format())
		note(cmp.Checks)
		emit("")
	}
	if experiment == "all" || experiment == "ablation" {
		t, err := bench.RunAblation()
		if err != nil {
			return err
		}
		results.AddTable("ablation", t)
		emit(t.Format())
	}
	if experiment == "all" || experiment == "pfactor" {
		t, err := bench.RunPFactor()
		if err != nil {
			return err
		}
		results.AddTable("pfactor", t)
		emit(t.Format())
		note(bench.PFactorChecks(t))
		emit("")
	}
	type simple struct {
		name string
		want bool
		run  func() (*bench.Table, []bench.Check, error)
	}
	for _, exp := range []simple{
		{"frag", experiment == "all" || experiment == "frag", bench.RunFragmentation},
		{"cache", experiment == "all" || experiment == "cache", bench.RunCacheExp},
		{"modern", experiment == "all" || experiment == "modern", bench.RunModern},
		{"trace", experiment == "all" || experiment == "trace", bench.RunTrace},
		{"wan", experiment == "all" || experiment == "wan", bench.RunWAN},
		{"parallel", experiment == "all" || experiment == "parallel", bench.RunParallelExp},
		{"zerocopy", experiment == "all" || experiment == "zerocopy", bench.RunZeroCopy},
		{"groupcommit", experiment == "all" || experiment == "groupcommit", bench.RunGroupCommit},
	} {
		if !exp.want {
			continue
		}
		t, checks, err := exp.run()
		if err != nil {
			return err
		}
		results.AddTable(exp.name, t)
		emit(t.Format())
		note(checks)
		emit("")
	}
	if asJSON {
		if err := results.WriteJSON(stdout); err != nil {
			return err
		}
	}
	if failed {
		return fmt.Errorf("one or more shape checks failed")
	}
	return nil
}
