// Command benchmark regenerates every table and figure of the paper's
// evaluation (§4) plus the ablations, on the virtual clock. Run with no
// flags for everything, or select one experiment:
//
//	benchmark -experiment f2        # Fig. 2: Bullet delay/bandwidth
//	benchmark -experiment f3        # Fig. 3: SUN NFS delay/bandwidth
//	benchmark -experiment compare   # §4 comparison claims C1-C4
//	benchmark -experiment ablation  # A1: layout ablation, same hardware
//	benchmark -experiment pfactor   # A2: paranoia-factor sweep
//	benchmark -experiment frag      # A3: fragmentation + compaction
//	benchmark -experiment cache     # A4: RAM cache under pressure
//	benchmark -experiment modern    # what-if: both designs on 2020s hardware
//	benchmark -experiment trace     # trace replay with the paper's size mix
//	benchmark -experiment wan       # whole-file vs per-block across a WAN link
package main

import (
	"flag"
	"fmt"
	"os"

	"bulletfs/internal/bench"
)

func main() {
	experiment := flag.String("experiment", "all",
		"experiment to run: all, f2, f3, compare, ablation, pfactor, frag, cache, modern, trace, wan")
	flag.Parse()
	if err := run(*experiment); err != nil {
		fmt.Fprintln(os.Stderr, "benchmark:", err)
		os.Exit(1)
	}
}

func run(experiment string) error {
	var failed bool
	note := func(checks []bench.Check) {
		for _, c := range checks {
			fmt.Println(c.Format())
			if !c.Pass {
				failed = true
			}
		}
	}

	wantF2 := experiment == "all" || experiment == "f2" || experiment == "compare"
	wantF3 := experiment == "all" || experiment == "f3" || experiment == "compare"

	var f2 *bench.F2Result
	var f3 *bench.F3Result
	var err error
	if wantF2 {
		if f2, err = bench.RunF2(); err != nil {
			return err
		}
		if experiment != "compare" {
			fmt.Println(f2.Delay.Format())
			fmt.Println(f2.Bandwidth.Format())
		}
	}
	if wantF3 {
		if f3, err = bench.RunF3(); err != nil {
			return err
		}
		if experiment != "compare" {
			fmt.Println(f3.Delay.Format())
			fmt.Println(f3.Bandwidth.Format())
		}
	}
	if experiment == "all" || experiment == "compare" {
		cmp := bench.RunCompare(f2, f3)
		fmt.Println(cmp.Ratios.Format())
		note(cmp.Checks)
		fmt.Println()
	}
	if experiment == "all" || experiment == "ablation" {
		t, err := bench.RunAblation()
		if err != nil {
			return err
		}
		fmt.Println(t.Format())
	}
	if experiment == "all" || experiment == "pfactor" {
		t, err := bench.RunPFactor()
		if err != nil {
			return err
		}
		fmt.Println(t.Format())
		note(bench.PFactorChecks(t))
		fmt.Println()
	}
	if experiment == "all" || experiment == "frag" {
		t, checks, err := bench.RunFragmentation()
		if err != nil {
			return err
		}
		fmt.Println(t.Format())
		note(checks)
		fmt.Println()
	}
	if experiment == "all" || experiment == "cache" {
		t, checks, err := bench.RunCacheExp()
		if err != nil {
			return err
		}
		fmt.Println(t.Format())
		note(checks)
		fmt.Println()
	}
	if experiment == "all" || experiment == "modern" {
		t, checks, err := bench.RunModern()
		if err != nil {
			return err
		}
		fmt.Println(t.Format())
		note(checks)
		fmt.Println()
	}
	if experiment == "all" || experiment == "trace" {
		t, checks, err := bench.RunTrace()
		if err != nil {
			return err
		}
		fmt.Println(t.Format())
		note(checks)
		fmt.Println()
	}
	if experiment == "all" || experiment == "wan" {
		t, checks, err := bench.RunWAN()
		if err != nil {
			return err
		}
		fmt.Println(t.Format())
		note(checks)
		fmt.Println()
	}
	if failed {
		return fmt.Errorf("one or more shape checks failed")
	}
	return nil
}
