// Command bulletd runs a Bullet file server over TCP with file-backed
// replica disks.
//
// First run (format two 64 MB replicas and serve):
//
//	bulletd -disks /var/bullet/d0.img,/var/bullet/d1.img -format -size 64 -listen :7001
//
// Subsequent runs reuse the images:
//
//	bulletd -disks /var/bullet/d0.img,/var/bullet/d1.img -listen :7001
//
// The server's capability port is derived from -port (a service name), so
// clients can reconstruct it; capabilities survive restarts.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"bulletfs/internal/bullet"
	"bulletfs/internal/bulletsvc"
	"bulletfs/internal/capability"
	"bulletfs/internal/disk"
	"bulletfs/internal/locate"
	"bulletfs/internal/rpc"
	"bulletfs/internal/scrub"
	"bulletfs/internal/stats"
	"bulletfs/internal/trace"
)

// httpGrace bounds the graceful drain of the observability endpoint on
// shutdown: in-flight scrapes get this long to finish before their
// connections are closed hard.
const httpGrace = 5 * time.Second

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bulletd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		disks     = flag.String("disks", "", "comma-separated replica image paths (required)")
		format    = flag.Bool("format", false, "create/format the images before serving")
		blockSize = flag.Int("blocksize", 512, "sector size in bytes")
		sizeMB    = flag.Int64("size", 64, "image size in MB when formatting")
		inodes    = flag.Int("inodes", 10000, "inode table capacity when formatting")
		listen    = flag.String("listen", ":7001", "TCP listen address")
		port      = flag.String("port", "bullet", "service name the capability port derives from")
		cacheMB   = flag.Int64("cache", 64, "RAM file cache size in MB")
		locateAt  = flag.String("locate", "", "located registry address to announce this server at (optional)")
		advertise = flag.String("advertise", "", "address to announce (default: the bound listen address)")
		registry  = flag.String("registry", "registry", "registry service name when announcing")
		httpAddr  = flag.String("http", "", "expvar-style HTTP address serving GET /debug/stats and /debug/traces (optional, e.g. :7002)")
		slowMS    = flag.Int64("slowms", 50, "slow-request threshold in milliseconds; slow traces go to the slow ring and stderr as one-line JSON (0 disables)")
		scrubIvl  = flag.Duration("scrub-interval", time.Hour, "time between background scrub passes over all files (0 disables periodic passes; `bulletctl scrub` still works)")
		scrubRate = flag.Int64("scrub-rate", scrub.DefaultBytesPerSec, "scrub read budget in bytes per second")
		maxInFl   = flag.Int("max-inflight", 0, "admission limit on concurrent file operations; past it requests are shed with StatusBusy (0 disables)")
		gcWindow  = flag.Duration("group-commit", 0, "group-commit flush window: concurrent creates batch their replica sync round-trips for up to this long (0 disables; try 500us-2ms)")
		gcBatch   = flag.Int("group-commit-batch", 0, "max creates per group-commit batch; a full batch flushes immediately (0 = default 64)")
		telemIvl  = flag.Duration("telemetry-interval", stats.DefaultInterval, "telemetry sampling interval: the collector snapshots all metrics and pushes one WATCH update per interval")
		telemRing = flag.Int("telemetry-ring", stats.DefaultRingSize, "telemetry history depth: how many periodic samples each metric retains")
	)
	flag.Parse()
	if *disks == "" {
		return fmt.Errorf("-disks is required")
	}

	paths := strings.Split(*disks, ",")
	devs := make([]disk.Device, 0, len(paths))
	for _, p := range paths {
		p = strings.TrimSpace(p)
		var dev disk.Device
		var err error
		if *format {
			dev, err = disk.CreateFile(p, *blockSize, *sizeMB<<20/int64(*blockSize))
		} else {
			dev, err = disk.OpenFile(p, *blockSize)
		}
		if err != nil {
			return err
		}
		devs = append(devs, dev)
	}
	set, err := disk.NewReplicaSet(devs...)
	if err != nil {
		return err
	}
	if *format {
		if err := bullet.Format(set, *inodes); err != nil {
			return err
		}
		fmt.Printf("formatted %d replicas, %d inodes, %d MB each\n", len(paths), *inodes, *sizeMB)
	}

	engine, err := bullet.New(set, bullet.Options{
		Port:              capability.PortFromString(*port),
		CacheBytes:        *cacheMB << 20,
		GroupCommitWindow: *gcWindow,
		GroupCommitBatch:  *gcBatch,
	})
	if err != nil {
		return err
	}
	defer engine.Close() //nolint:errcheck // drained below

	// The flight recorder is always on: every request is traced into a
	// fixed-memory ring; -slowms additionally classifies slow requests
	// into their own ring and logs them as one-line JSON on stderr.
	recorder := trace.NewRecorder(
		trace.WithSlowThreshold(time.Duration(*slowMS)*time.Millisecond),
		trace.WithSlowLog(os.Stderr),
	)
	defer recorder.Close()

	// Background integrity scrubbing: walk all files, verify every replica
	// copy against its checksum, repair divergence. Rate-limited so it is
	// invisible next to real traffic.
	scrubber := scrub.New(engine, scrub.Config{Interval: *scrubIvl, BytesPerSec: *scrubRate})
	scrubber.AttachMetrics(engine.Metrics())
	scrubber.Start()
	defer scrubber.Stop()

	// The telemetry collector samples every metric on a fixed interval
	// into fixed-size rings, deriving per-window rates and tail latencies;
	// the WATCH RPC and /debug/telemetry stream its updates.
	collector := stats.NewCollector(engine.Metrics(), *telemIvl, *telemRing)
	collector.Start()
	defer collector.Close()

	mux := rpc.NewMux(0)
	mux.AttachMetrics(engine.Metrics(), bulletsvc.CommandName)
	mux.AttachRecorder(recorder)
	svc := bulletsvc.New(engine)
	svc.AttachRecorder(recorder)
	svc.AttachScrubber(scrubber)
	svc.AttachCollector(collector)
	if *maxInFl > 0 {
		adm := bulletsvc.NewAdmission(*maxInFl)
		adm.AttachMetrics(engine.Metrics())
		svc.AttachAdmission(adm)
	}
	svc.Register(mux)
	srv := rpc.NewTCPServer(mux)
	addr, err := srv.Listen(*listen)
	if err != nil {
		return err
	}
	fmt.Printf("bulletd serving on %s\n", addr)

	// Optional HTTP observability endpoint. Unauthenticated like expvar;
	// bind it to a loopback or otherwise protected address.
	var httpWG sync.WaitGroup
	var httpSrv *http.Server
	if *httpAddr != "" {
		hmux := bulletsvc.NewDebugMux(bulletsvc.DebugMuxConfig{
			Registry:  engine.Metrics(),
			Recorder:  recorder,
			Collector: collector,
			Pprof:     true,
		})
		lis, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			return fmt.Errorf("http listen %s: %w", *httpAddr, err)
		}
		httpSrv = &http.Server{Handler: hmux, ReadHeaderTimeout: 5 * time.Second}
		httpWG.Add(1)
		go func() {
			defer httpWG.Done()
			if err := httpSrv.Serve(lis); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "bulletd: http:", err)
			}
		}()
		fmt.Printf("stats on http://%s/debug/stats, traces on /debug/traces, telemetry on /debug/telemetry, OpenMetrics on /metrics, pprof on /debug/pprof/\n", lis.Addr())
	}
	fmt.Printf("capability port: %x (service name %q)\n", engine.Port(), *port)
	fmt.Printf("files: %d live, max file size %d bytes\n", engine.Live(), engine.MaxFileSize())

	if *locateAt != "" {
		announced := *advertise
		if announced == "" {
			announced = addr
		}
		regPort := capability.PortFromString(*registry)
		regTr := rpc.NewTCPTransport(rpc.StaticResolver(map[capability.Port]string{regPort: *locateAt}), 10*time.Second)
		defer regTr.Close() //nolint:errcheck // process exit
		announcer := locate.NewClient(regTr, regPort)
		if err := announcer.Announce(engine.Port(), announced); err != nil {
			return fmt.Errorf("announcing at %s: %w", *locateAt, err)
		}
		fmt.Printf("announced %s at registry %s\n", announced, *locateAt)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	if httpSrv != nil {
		// Graceful drain: let in-flight scrapes and debug requests finish
		// under a grace window instead of snapping their connections; only
		// if the window expires is the listener closed hard. A second
		// SIGTERM during the window is the operator's "now means now".
		ctx, cancel := context.WithTimeout(context.Background(), httpGrace)
		done := make(chan error, 1)
		go func() { done <- httpSrv.Shutdown(ctx) }()
		select {
		case <-done:
		case <-sig:
			cancel()
		}
		cancel()
		httpSrv.Close() //nolint:errcheck // idempotent after Shutdown; hard-stops stragglers
		httpWG.Wait()
	}
	// Close the collector before the RPC server: closing unblocks every
	// WATCH stream (their subscription channels close), so the server's
	// connection drain does not wait on open-ended watchers.
	collector.Close()
	if err := srv.Close(); err != nil {
		return err
	}
	scrubber.Stop()
	engine.Sync()
	return engine.Close()
}
