// Command located runs the port-location registry: servers announce
// port → address mappings, clients resolve them (the TCP substitute for
// Amoeba's broadcast port location).
//
//	located -listen :7000
//	bulletd ... -locate localhost:7000       # announces itself
//	bulletctl -locate localhost:7000 put f   # resolves the server
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bulletfs/internal/locate"
	"bulletfs/internal/rpc"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "located:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen = flag.String("listen", ":7000", "TCP listen address")
		name   = flag.String("name", "registry", "well-known service name of the registry")
	)
	flag.Parse()

	reg := locate.NewServer(*name)
	mux := rpc.NewMux(0)
	reg.RegisterOn(mux)
	srv := rpc.NewTCPServer(mux)
	addr, err := srv.Listen(*listen)
	if err != nil {
		return err
	}
	fmt.Printf("located serving on %s (registry name %q, port %x)\n", addr, *name, reg.Port())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(30 * time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			fmt.Printf("%d registrations\n", len(reg.Entries()))
		case <-sig:
			fmt.Println("shutting down")
			return srv.Close()
		}
	}
}
