package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"bulletfs/internal/analysis"
)

// The tests drive run() directly, from this package's directory (the go
// tool sets cwd to the package under test), so package patterns are given
// relative to cmd/bulletlint.

const (
	cleanPkg = "../../internal/trace"
	dirtyPkg = "../../internal/analysis/testdata/src/pinleak"
)

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestCleanPackageExitsZero(t *testing.T) {
	code, stdout, stderr := runCLI(t, cleanPkg)
	if code != 0 {
		t.Fatalf("exit %d, want 0; stdout=%q stderr=%q", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("clean run printed %q, want nothing", stdout)
	}
}

func TestDirtyPackageExitsOne(t *testing.T) {
	code, stdout, stderr := runCLI(t, dirtyPkg)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stdout=%q stderr=%q", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "(pinleak)") {
		t.Errorf("text output missing pinleak diagnostics:\n%s", stdout)
	}
	if !strings.Contains(stderr, "diagnostic(s)") {
		t.Errorf("stderr missing the summary line: %q", stderr)
	}
	// Every line carries a file:line:col prefix for the offending file
	// (the package has several golden files: pinleak.go, lease.go, ...).
	for _, line := range strings.Split(strings.TrimSpace(stdout), "\n") {
		if !strings.Contains(line, "src/pinleak/") || !strings.Contains(line, ".go:") {
			t.Errorf("diagnostic missing its file position: %q", line)
		}
	}
}

func TestUsageErrorsExitTwo(t *testing.T) {
	cases := [][]string{
		{"-disable", "bogus", cleanPkg},
		{"-format", "xml", cleanPkg},
		{"./no/such/dir"},
		{"-nonexistent-flag"},
	}
	for _, args := range cases {
		if code, _, _ := runCLI(t, args...); code != 2 {
			t.Errorf("run(%q) = %d, want 2", args, code)
		}
	}
}

func TestDisableSilencesPass(t *testing.T) {
	code, stdout, _ := runCLI(t, "-disable", "pinleak", dirtyPkg)
	if code != 0 {
		t.Fatalf("exit %d, want 0 with the only failing pass disabled; stdout=%q", code, stdout)
	}
}

func TestListNamesEveryPass(t *testing.T) {
	code, stdout, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	lines := strings.Split(strings.TrimSpace(stdout), "\n")
	if want := len(analysis.All()); len(lines) != want {
		t.Fatalf("-list printed %d lines, want %d:\n%s", len(lines), want, stdout)
	}
	for _, name := range []string{"ctcmp", "lockorder", "pinleak", "spanbalance", "rightscheck"} {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list output missing %s", name)
		}
	}
}

func TestJSONOutput(t *testing.T) {
	for _, args := range [][]string{
		{"-json", dirtyPkg},
		{"-format", "json", dirtyPkg},
	} {
		code, stdout, _ := runCLI(t, args...)
		if code != 1 {
			t.Fatalf("run(%q) = %d, want 1", args, code)
		}
		var diags []analysis.Diagnostic
		if err := json.Unmarshal([]byte(stdout), &diags); err != nil {
			t.Fatalf("run(%q) output is not JSON: %v\n%s", args, err, stdout)
		}
		if len(diags) == 0 {
			t.Fatalf("run(%q) produced an empty diagnostic array", args)
		}
		for _, d := range diags {
			if d.Pass != "pinleak" || d.Line == 0 || d.File == "" {
				t.Errorf("run(%q): incomplete diagnostic %+v", args, d)
			}
		}
	}
	// A clean JSON run emits an empty array, not null.
	code, stdout, _ := runCLI(t, "-format", "json", cleanPkg)
	if code != 0 {
		t.Fatalf("clean json run exited %d, want 0", code)
	}
	if strings.TrimSpace(stdout) != "[]" {
		t.Errorf("clean json run printed %q, want []", stdout)
	}
}

func TestGitHubOutput(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-format", "github", dirtyPkg)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr=%q", code, stderr)
	}
	lines := strings.Split(strings.TrimSpace(stdout), "\n")
	for _, line := range lines {
		if !strings.HasPrefix(line, "::error file=") {
			t.Errorf("github line lacks the workflow-command prefix: %q", line)
		}
		if !strings.Contains(line, ",line=") || !strings.Contains(line, ",col=") {
			t.Errorf("github line missing line/col properties: %q", line)
		}
		if !strings.Contains(line, "(pinleak)") {
			t.Errorf("github line missing the pass name: %q", line)
		}
	}
	// Clean github runs stay silent so CI logs stay readable.
	code, stdout, _ = runCLI(t, "-format", "github", cleanPkg)
	if code != 0 || stdout != "" {
		t.Errorf("clean github run: exit %d output %q, want 0 and empty", code, stdout)
	}
}
