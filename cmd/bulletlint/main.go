// Command bulletlint runs the Bullet static-analysis suite over the
// module: constant-time capability comparisons (ctcmp), mutex annotations
// (lockguard), panic-free RPC paths (panicfree), error wrapping at package
// boundaries (errwrap), stoppable goroutines (goroutinestop), the lock
// hierarchy (lockorder), cache View pin balance (pinleak), trace span
// balance (spanbalance), and capability checks in RPC handlers
// (rightscheck).
//
// Usage:
//
//	go run ./cmd/bulletlint ./...
//	go run ./cmd/bulletlint -format=json ./internal/cache
//	go run ./cmd/bulletlint -format=github ./...   # CI annotations
//	go run ./cmd/bulletlint -disable errwrap,goroutinestop ./...
//
// -format selects text (default), json (an array of diagnostics), or
// github (GitHub Actions workflow commands, rendered as inline PR
// annotations). -json remains as an alias for -format=json.
//
// Exit status: 0 when clean, 1 when any diagnostic is reported, 2 on a
// loading or usage error. See docs/STATIC_ANALYSIS.md for the pass
// catalogue and the annotation grammar.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"bulletfs/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bulletlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array (alias for -format=json)")
	format := fs.String("format", "text", "output format: text, json, or github")
	disable := fs.String("disable", "", "comma-separated passes to skip")
	list := fs.Bool("list", false, "list the available passes and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: bulletlint [-format text|json|github] [-disable pass,...] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *jsonOut {
		*format = "json"
	}
	switch *format {
	case "text", "json", "github":
	default:
		fmt.Fprintf(stderr, "bulletlint: unknown format %q (want text, json, or github)\n", *format)
		return 2
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	var disabled []string
	if *disable != "" {
		disabled = strings.Split(*disable, ",")
	}
	passes, err := analysis.Select(disabled)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	patterns, err := rebase(fs.Args(), cwd, root)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	prog, err := analysis.LoadModule(root, patterns)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	diags := analysis.Run(prog, analysis.DefaultConfig(), passes)
	for i := range diags {
		if rel, err := filepath.Rel(cwd, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = rel
		}
	}
	switch *format {
	case "json":
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	case "github":
		// GitHub Actions workflow commands: the runner turns these into
		// inline annotations on the PR diff.
		for _, d := range diags {
			fmt.Fprintf(stdout, "::error file=%s,line=%d,col=%d::%s (%s)\n",
				d.File, d.Line, d.Col, d.Message, d.Pass)
		}
	default:
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		if *format == "text" {
			fmt.Fprintf(stderr, "bulletlint: %d diagnostic(s)\n", len(diags))
		}
		return 1
	}
	return 0
}

// rebase converts patterns given relative to cwd into patterns relative to
// the module root, which is what LoadModule expects.
func rebase(patterns []string, cwd, root string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	rel, err := filepath.Rel(root, cwd)
	if err != nil {
		return nil, fmt.Errorf("bulletlint: cwd outside module: %w", err)
	}
	if rel == "." {
		return patterns, nil
	}
	out := make([]string, len(patterns))
	for i, p := range patterns {
		out[i] = "./" + filepath.ToSlash(filepath.Join(rel, strings.TrimPrefix(p, "./")))
	}
	return out, nil
}
