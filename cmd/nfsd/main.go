// Command nfsd runs the block-model baseline file server (the paper's
// comparator) over TCP with a file-backed disk image.
//
//	nfsd -image /var/nfs/disk.img -format -size 128 -listen :7003
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"bulletfs/internal/capability"
	"bulletfs/internal/disk"
	"bulletfs/internal/nfs"
	"bulletfs/internal/rpc"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "nfsd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		image   = flag.String("image", "", "disk image path (required)")
		format  = flag.Bool("format", false, "create/format the image before serving")
		sizeMB  = flag.Int64("size", 128, "image size in MB when formatting")
		listen  = flag.String("listen", ":7003", "TCP listen address")
		port    = flag.String("port", "nfs", "service name the port derives from")
		cacheMB = flag.Int64("cache", 3, "buffer cache size in MB (the paper's server had 3)")
		stride  = flag.Int("stride", 7, "block allocation stride (1 = fresh FS, 7 = aged)")
	)
	flag.Parse()
	if *image == "" {
		return fmt.Errorf("-image is required")
	}

	var dev disk.Device
	var err error
	if *format {
		dev, err = disk.CreateFile(*image, 512, *sizeMB<<20/512)
	} else {
		dev, err = disk.OpenFile(*image, 512)
	}
	if err != nil {
		return err
	}
	if *format {
		if err := nfs.Format(dev, nfs.FormatConfig{}); err != nil {
			return err
		}
		fmt.Printf("formatted %d MB block filesystem\n", *sizeMB)
	}
	srv, err := nfs.Mount(dev, nfs.Options{CacheBytes: *cacheMB << 20, AllocStride: *stride})
	if err != nil {
		return err
	}

	mux := rpc.NewMux(0)
	svc := nfs.NewService(srv, capability.PortFromString(*port))
	svc.Register(mux)
	tcp := rpc.NewTCPServer(mux)
	addr, err := tcp.Listen(*listen)
	if err != nil {
		return err
	}
	fmt.Printf("nfsd serving on %s (port name %q)\n", addr, *port)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	if err := tcp.Close(); err != nil {
		return err
	}
	return dev.Close()
}
