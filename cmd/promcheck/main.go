// Command promcheck scrapes an OpenMetrics endpoint and validates the
// exposition with the in-repo parser (internal/promtext) — no external
// Prometheus tooling needed. CI uses it to prove a live bulletd's
// /metrics parses cleanly and carries trace exemplars.
//
//	promcheck -url http://127.0.0.1:7002/metrics -min-exemplars 1
//
// Exit status 0 means the document parsed, every histogram family kept
// its bucket invariants, and the floors (-min-families, -min-exemplars,
// -min-histograms) were met. Any violation prints a diagnostic and
// exits 1. With -require-names, each comma-separated family name must
// be present.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"bulletfs/internal/promtext"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "promcheck:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		url          = flag.String("url", "http://127.0.0.1:7002/metrics", "OpenMetrics endpoint to scrape")
		timeout      = flag.Duration("timeout", 10*time.Second, "total scrape timeout")
		minFamilies  = flag.Int("min-families", 1, "fail unless at least this many metric families are exposed")
		minHists     = flag.Int("min-histograms", 0, "fail unless at least this many histogram families are exposed")
		minExemplars = flag.Int("min-exemplars", 0, "fail unless at least this many exemplars are exposed")
		requireNames = flag.String("require-names", "", "comma-separated family names that must be present")
		wantCT       = flag.Bool("check-content-type", true, "require an openmetrics-text Content-Type on the response")
	)
	flag.Parse()

	client := &http.Client{Timeout: *timeout}
	resp, err := client.Get(*url)
	if err != nil {
		return err
	}
	defer resp.Body.Close() //nolint:errcheck // read side
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", *url, resp.Status)
	}
	if *wantCT {
		ct := resp.Header.Get("Content-Type")
		if !strings.Contains(ct, "openmetrics-text") {
			return fmt.Errorf("Content-Type %q is not an OpenMetrics exposition", ct)
		}
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}

	st, err := promtext.Validate(strings.NewReader(string(body)))
	if err != nil {
		return fmt.Errorf("exposition invalid: %w", err)
	}
	fmt.Printf("promcheck: %d families, %d samples, %d histograms, %d exemplars\n",
		st.Families, st.Samples, st.Histograms, st.Exemplars)

	if st.Families < *minFamilies {
		return fmt.Errorf("%d families < floor %d", st.Families, *minFamilies)
	}
	if st.Histograms < *minHists {
		return fmt.Errorf("%d histogram families < floor %d", st.Histograms, *minHists)
	}
	if st.Exemplars < *minExemplars {
		return fmt.Errorf("%d exemplars < floor %d", st.Exemplars, *minExemplars)
	}
	if *requireNames != "" {
		names, err := promtext.FamilyNames(strings.NewReader(string(body)))
		if err != nil {
			return err
		}
		have := make(map[string]bool)
		for _, n := range names {
			have[n] = true
		}
		for _, want := range strings.Split(*requireNames, ",") {
			want = strings.TrimSpace(want)
			if want != "" && !have[want] {
				return fmt.Errorf("required family %q not exposed", want)
			}
		}
	}
	return nil
}
