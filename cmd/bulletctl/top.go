package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"bulletfs/internal/capability"
	"bulletfs/internal/client"
	"bulletfs/internal/stats"
)

// bulletctl top: a live, self-refreshing view of the server's telemetry
// stream (the WATCH RPC). Each collector tick repaints one screen:
// per-operation throughput and windowed tail latency, cache hit rate,
// admission shed rate, replica health — and the slowest recent trace ID
// per operation, ready to paste into `bulletctl trace`.

// runTop drives the watch subscription and rendering. maxUpdates 0
// streams until interrupted; asJSON emits one JSON document per update
// instead of repainting (for scripts and tests).
func runTop(cl *client.Client, cp capability.Capability, maxUpdates uint64, asJSON bool) error {
	var prev *stats.Update
	first := true
	return cl.Watch(cp, maxUpdates, func(u stats.Update) error {
		if asJSON {
			body, err := json.Marshal(u)
			if err != nil {
				return err
			}
			fmt.Println(string(body))
			return nil
		}
		renderTop(os.Stdout, &u, prev, first)
		p := u
		prev = &p
		first = false
		return nil
	})
}

// opRow is one operation's line in the table.
type opRow struct {
	name      string
	perSec    float64
	errPerSec float64
	p50, p99  float64
	slowTrace string
	slowNS    int64
}

// renderTop repaints one update. After the first frame the screen is
// cleared with ANSI codes, giving the classic top(1) refresh.
func renderTop(w *os.File, u, prev *stats.Update, first bool) {
	if !first {
		fmt.Fprint(w, "\x1b[H\x1b[2J")
	}
	at := time.Unix(0, u.UnixNano)
	interval := time.Duration(u.IntervalNS)

	// Header: totals and derived health ratios.
	var totalOps, totalErrs float64
	rows := make([]opRow, 0, 16)
	for name, r := range u.Counters {
		op, ok := strings.CutPrefix(name, "rpc.")
		if !ok || !strings.HasSuffix(op, ".requests") {
			continue
		}
		op = strings.TrimSuffix(op, ".requests")
		totalOps += r.PerSec
		row := opRow{name: op, perSec: r.PerSec}
		row.errPerSec = u.Counters["rpc."+op+".errors"].PerSec
		totalErrs += row.errPerSec
		if win, ok := u.Histograms["rpc."+op+".latency_ns"]; ok {
			row.p50, row.p99 = win.P50, win.P99
			row.slowTrace, row.slowNS = win.SlowTrace, win.SlowNS
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].perSec != rows[j].perSec {
			return rows[i].perSec > rows[j].perSec
		}
		return rows[i].name < rows[j].name
	})

	fmt.Fprintf(w, "bullet top — %s  (window %s, seq %d)\n",
		at.Format("15:04:05"), interval.Round(time.Millisecond), u.Seq)
	fmt.Fprintf(w, "ops/s %.1f   errs/s %.1f   cache hit %s   shed %s   replicas %s   watchers %d\n\n",
		totalOps, totalErrs,
		ratioPct(u, prev, "cache.hits", "cache.misses"),
		ratioPct(u, prev, "rpc.admission_shed", "rpc.admission_admitted"),
		replicaHealth(u), u.Gauges["telemetry.watchers"])

	fmt.Fprintf(w, "%-14s %10s %10s %10s %10s  %s\n",
		"OP", "OPS/S", "ERR/S", "P50", "P99", "SLOWEST TRACE")
	for _, r := range rows {
		if r.perSec == 0 && r.errPerSec == 0 {
			continue
		}
		slow := "-"
		if r.slowTrace != "" {
			slow = fmt.Sprintf("%s (%s)", r.slowTrace, fmtNS(float64(r.slowNS)))
		}
		fmt.Fprintf(w, "%-14s %10.1f %10.1f %10s %10s  %s\n",
			r.name, r.perSec, r.errPerSec, fmtNS(r.p50), fmtNS(r.p99), slow)
	}
}

// ratioPct renders hits/(hits+misses) as a percentage over the current
// window. The inputs are absolute gauges, so the window's movement is
// the difference against the previous update; on the first update (or
// no movement) the lifetime ratio is used.
func ratioPct(u, prev *stats.Update, hitName, missName string) string {
	hits := float64(u.Gauges[hitName])
	misses := float64(u.Gauges[missName])
	if prev != nil {
		dh := hits - float64(prev.Gauges[hitName])
		dm := misses - float64(prev.Gauges[missName])
		if dh >= 0 && dm >= 0 && dh+dm > 0 {
			return fmt.Sprintf("%.0f%%", 100*dh/(dh+dm))
		}
	}
	if hits+misses == 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f%%", 100*hits/(hits+misses))
}

// replicaHealth summarizes the replica set from the disk gauges.
// disk.recovering is the index under online recovery, -1 when none.
func replicaHealth(u *stats.Update) string {
	alive, ok := u.Gauges["disk.alive_replicas"]
	if !ok {
		return "-"
	}
	s := fmt.Sprintf("%d alive", alive)
	if rec, ok := u.Gauges["disk.recovering"]; ok && rec >= 0 {
		s += fmt.Sprintf(" (recovering %d)", rec)
	}
	return s
}

// fmtNS renders nanoseconds human-readably (µs/ms/s).
func fmtNS(ns float64) string {
	switch {
	case ns <= 0:
		return "-"
	case ns < 1e3:
		return fmt.Sprintf("%.0fns", ns)
	case ns < 1e6:
		return fmt.Sprintf("%.0fµs", ns/1e3)
	case ns < 1e9:
		return fmt.Sprintf("%.1fms", ns/1e6)
	default:
		return fmt.Sprintf("%.2fs", ns/1e9)
	}
}
