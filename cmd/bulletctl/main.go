// Command bulletctl is the command-line client of a bulletd server.
//
//	bulletctl -server localhost:7001 put notes.txt     # prints a capability
//	bulletctl -server localhost:7001 get <capability>  # writes contents to stdout
//	bulletctl -server localhost:7001 get -range 64:128 <capability>  # 128 bytes from offset 64 ("64:" = to EOF)
//	bulletctl -server localhost:7001 get -stream <capability>        # chunked READSTREAM download
//	bulletctl -server localhost:7001 size <capability>
//	bulletctl -server localhost:7001 append <capability> more.txt
//	bulletctl -server localhost:7001 del <capability>
//	bulletctl -server localhost:7001 stat
//	bulletctl -server localhost:7001 stats [-json] <capability>
//	bulletctl -server localhost:7001 trace [-slow] [-json] <capability>
//	bulletctl -server localhost:7001 top [-n updates] [-json] <capability>  # live telemetry (WATCH)
//	bulletctl -server localhost:7001 compact
//	bulletctl -server localhost:7001 health [-json] <capability>
//	bulletctl -server localhost:7001 scrub <admin-capability>
//	bulletctl -server localhost:7001 recover <admin-capability> <replica>
//	bulletctl restrict <capability> read,delete        # offline, no server
//
// Exit codes distinguish failure classes for scripts: 1 for generic
// errors, 2 when the server rejected the capability (bad check field or
// missing rights), 3 when the transport failed before a reply arrived.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"bulletfs/internal/bulletsvc"
	"bulletfs/internal/capability"
	"bulletfs/internal/client"
	"bulletfs/internal/locate"
	"bulletfs/internal/rpc"
	"bulletfs/internal/stats"
	"bulletfs/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bulletctl:", err)
		os.Exit(exitCode(err))
	}
}

// exitCode classifies an error for scripts: capability rejections (the
// server answered and said no) are distinct from transport failures (no
// answer at all).
func exitCode(err error) int {
	switch {
	case errors.Is(err, capability.ErrBadCheck), errors.Is(err, capability.ErrBadRights):
		return 2
	case errors.Is(err, client.ErrTransport):
		return 3
	default:
		return 1
	}
}

func usage() error {
	return fmt.Errorf("usage: bulletctl [-server addr] [-port name] [-pfactor n] <put|get|size|append|del|stat|stats|trace|top|compact|health|scrub|recover|restrict> args...")
}

func run() error {
	var (
		server   = flag.String("server", "localhost:7001", "bulletd TCP address")
		port     = flag.String("port", "bullet", "service name of the server's capability port")
		pfactor  = flag.Int("pfactor", 1, "paranoia factor for put/append (0 = reply before disk)")
		locateAt = flag.String("locate", "", "located registry address; overrides -server by resolving ports dynamically")
		registry = flag.String("registry", "registry", "registry service name when using -locate")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		return usage()
	}

	// restrict works offline.
	if args[0] == "restrict" {
		if len(args) != 3 {
			return fmt.Errorf("usage: bulletctl restrict <capability> <right,right,...>")
		}
		return restrict(args[1], args[2])
	}

	p := capability.PortFromString(*port)
	var resolver rpc.Resolver
	if *locateAt != "" {
		regPort := capability.PortFromString(*registry)
		regTr := rpc.NewTCPTransport(rpc.StaticResolver(map[capability.Port]string{regPort: *locateAt}), 30*time.Second)
		defer regTr.Close() //nolint:errcheck // process exit
		resolver = locate.NewClient(regTr, regPort).Resolve
	} else {
		resolver = rpc.StaticResolver(map[capability.Port]string{p: *server})
	}
	tr := rpc.NewTCPTransport(resolver, 30*time.Second)
	defer tr.Close() //nolint:errcheck // process exit
	// Trace IDs cost 12 bytes per request and make every bulletctl
	// operation findable in the server's flight recorder by ID.
	cl := client.New(tr, client.WithTraceIDs())

	switch args[0] {
	case "put":
		if len(args) != 2 {
			return fmt.Errorf("usage: bulletctl put <file>")
		}
		data, err := readInput(args[1])
		if err != nil {
			return err
		}
		c, err := cl.Create(p, data, *pfactor)
		if err != nil {
			return err
		}
		fmt.Println(c)
		return nil

	case "get":
		getUsage := fmt.Errorf("usage: bulletctl get [-stream] [-range off:n] <capability>")
		var streamGet bool
		var rangeSpec string
		rest := args[1:]
		for len(rest) > 0 && strings.HasPrefix(rest[0], "-") {
			switch {
			case rest[0] == "-stream":
				streamGet = true
				rest = rest[1:]
			case rest[0] == "-range" && len(rest) >= 2:
				rangeSpec = rest[1]
				rest = rest[2:]
			default:
				return getUsage
			}
		}
		if len(rest) != 1 {
			return getUsage
		}
		c, err := capability.Parse(rest[0])
		if err != nil {
			return err
		}
		switch {
		case rangeSpec != "":
			off, n, err := parseRange(rangeSpec)
			if err != nil {
				return err
			}
			data, err := cl.ReadRange(c, off, n)
			if err != nil {
				return err
			}
			_, err = os.Stdout.Write(data)
			return err
		case streamGet:
			// Chunked READSTREAM: frames are written to stdout as they
			// arrive, so the file is never buffered whole in this process.
			_, err := cl.ReadStream(c, 0, os.Stdout)
			return err
		default:
			data, err := cl.Read(c)
			if err != nil {
				return err
			}
			_, err = os.Stdout.Write(data)
			return err
		}

	case "size":
		c, err := parseCap(args)
		if err != nil {
			return err
		}
		n, err := cl.Size(c)
		if err != nil {
			return err
		}
		fmt.Println(n)
		return nil

	case "append":
		if len(args) != 3 {
			return fmt.Errorf("usage: bulletctl append <capability> <file>")
		}
		c, err := capability.Parse(args[1])
		if err != nil {
			return err
		}
		data, err := readInput(args[2])
		if err != nil {
			return err
		}
		nc, err := cl.Append(c, data, *pfactor)
		if err != nil {
			return err
		}
		fmt.Println(nc)
		return nil

	case "del":
		c, err := parseCap(args)
		if err != nil {
			return err
		}
		return cl.Delete(c)

	case "stat":
		st, err := cl.Stat(p)
		if err != nil {
			return err
		}
		printStats(st)
		return nil

	case "stats":
		// bulletctl stats [-json] <capability>
		var asJSON bool
		var capStr string
		for _, a := range args[1:] {
			if a == "-json" || a == "--json" {
				asJSON = true
			} else if capStr == "" {
				capStr = a
			} else {
				return fmt.Errorf("usage: bulletctl stats [-json] <capability>")
			}
		}
		if capStr == "" {
			return fmt.Errorf("usage: bulletctl stats [-json] <capability> (any readable file's capability authorizes the query)")
		}
		c, err := capability.Parse(capStr)
		if err != nil {
			return err
		}
		snap, err := cl.Stats(c)
		if err != nil {
			return err
		}
		if asJSON {
			body, err := snap.MarshalIndent()
			if err != nil {
				return err
			}
			fmt.Println(string(body))
			return nil
		}
		printSnapshot(snap)
		return nil

	case "trace":
		// bulletctl trace [-slow] [-json] <capability>
		var slow, asJSON bool
		var capStr string
		for _, a := range args[1:] {
			switch {
			case a == "-slow" || a == "--slow":
				slow = true
			case a == "-json" || a == "--json":
				asJSON = true
			case capStr == "":
				capStr = a
			default:
				return fmt.Errorf("usage: bulletctl trace [-slow] [-json] <capability>")
			}
		}
		if capStr == "" {
			return fmt.Errorf("usage: bulletctl trace [-slow] [-json] <capability> (any readable file's capability authorizes the query)")
		}
		c, err := capability.Parse(capStr)
		if err != nil {
			return err
		}
		traces, err := cl.Traces(c, slow)
		if err != nil {
			return err
		}
		if asJSON {
			body, err := json.MarshalIndent(traces, "", "  ")
			if err != nil {
				return err
			}
			fmt.Println(string(body))
			return nil
		}
		if len(traces) == 0 {
			fmt.Println("no traces recorded")
			return nil
		}
		for i := range traces {
			if i > 0 {
				fmt.Println()
			}
			trace.RenderTree(os.Stdout, &traces[i])
		}
		return nil

	case "top":
		// bulletctl top [-n updates] [-json] <capability>
		var asJSON bool
		var maxUpdates uint64
		var capStr string
		rest := args[1:]
		for len(rest) > 0 {
			switch {
			case rest[0] == "-json" || rest[0] == "--json":
				asJSON = true
				rest = rest[1:]
			case (rest[0] == "-n" || rest[0] == "--n") && len(rest) >= 2:
				n, err := strconv.ParseUint(rest[1], 10, 64)
				if err != nil {
					return fmt.Errorf("bad -n %q", rest[1])
				}
				maxUpdates = n
				rest = rest[2:]
			case capStr == "":
				capStr = rest[0]
				rest = rest[1:]
			default:
				return fmt.Errorf("usage: bulletctl top [-n updates] [-json] <capability>")
			}
		}
		if capStr == "" {
			return fmt.Errorf("usage: bulletctl top [-n updates] [-json] <capability> (any readable file's capability authorizes the watch)")
		}
		c, err := capability.Parse(capStr)
		if err != nil {
			return err
		}
		// The watch stream runs until interrupted; the default transport's
		// 30s transaction deadline would kill it, so top uses its own
		// deadline-free connection.
		watchTr := rpc.NewTCPTransport(resolver, 0)
		defer watchTr.Close() //nolint:errcheck // process exit
		return runTop(client.New(watchTr, client.WithTraceIDs()), c, maxUpdates, asJSON)

	case "compact":
		if err := cl.CompactDisk(p); err != nil {
			return err
		}
		fmt.Println("disk compacted")
		return nil

	case "health":
		// bulletctl health [-json] <capability>
		var asJSON bool
		var capStr string
		for _, a := range args[1:] {
			if a == "-json" || a == "--json" {
				asJSON = true
			} else if capStr == "" {
				capStr = a
			} else {
				return fmt.Errorf("usage: bulletctl health [-json] <capability>")
			}
		}
		if capStr == "" {
			return fmt.Errorf("usage: bulletctl health [-json] <capability> (any readable file's capability authorizes the query)")
		}
		c, err := capability.Parse(capStr)
		if err != nil {
			return err
		}
		h, err := cl.Health(c)
		if err != nil {
			return err
		}
		if asJSON {
			body, err := json.MarshalIndent(h, "", "  ")
			if err != nil {
				return err
			}
			fmt.Println(string(body))
			return nil
		}
		printHealth(h)
		return nil

	case "scrub":
		c, err := parseCap(args)
		if err != nil {
			return err
		}
		if err := cl.ScrubNow(c); err != nil {
			return err
		}
		fmt.Println("scrub pass triggered")
		return nil

	case "recover":
		if len(args) != 3 {
			return fmt.Errorf("usage: bulletctl recover <admin-capability> <replica>")
		}
		c, err := capability.Parse(args[1])
		if err != nil {
			return err
		}
		var replica int
		if _, err := fmt.Sscanf(args[2], "%d", &replica); err != nil {
			return fmt.Errorf("replica %q: %w", args[2], err)
		}
		if err := cl.Recover(c, replica); err != nil {
			return err
		}
		fmt.Printf("online recovery of replica %d started\n", replica)
		return nil

	default:
		return usage()
	}
}

func parseCap(args []string) (capability.Capability, error) {
	if len(args) != 2 {
		return capability.Capability{}, fmt.Errorf("usage: bulletctl %s <capability>", args[0])
	}
	return capability.Parse(args[1])
}

// parseRange parses the "off:n" argument of get -range. The part after
// the colon may be empty or "end", meaning "to the end of the file"
// (READ_RANGE's n = -1 on the wire).
func parseRange(spec string) (off, n int64, err error) {
	offStr, nStr, ok := strings.Cut(spec, ":")
	if !ok {
		return 0, 0, fmt.Errorf("bad -range %q: want off:n (n empty or \"end\" reads to EOF)", spec)
	}
	off, err = strconv.ParseInt(offStr, 10, 64)
	if err != nil || off < 0 {
		return 0, 0, fmt.Errorf("bad -range offset %q", offStr)
	}
	if nStr == "" || nStr == "end" {
		return off, -1, nil
	}
	n, err = strconv.ParseInt(nStr, 10, 64)
	if err != nil || n < 0 {
		return 0, 0, fmt.Errorf("bad -range length %q", nStr)
	}
	return off, n, nil
}

func readInput(path string) ([]byte, error) {
	if path == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}

func restrict(capStr, rightsStr string) error {
	c, err := capability.Parse(capStr)
	if err != nil {
		return err
	}
	var mask capability.Rights
	for _, r := range strings.Split(rightsStr, ",") {
		switch strings.TrimSpace(r) {
		case "read":
			mask |= capability.RightRead
		case "delete":
			mask |= capability.RightDelete
		case "modify":
			mask |= capability.RightModify
		case "list":
			mask |= capability.RightList
		case "admin":
			mask |= capability.RightAdmin
		default:
			return fmt.Errorf("unknown right %q (read, delete, modify, list, admin)", r)
		}
	}
	restricted, err := capability.Restrict(c, mask)
	if err != nil {
		return err
	}
	fmt.Println(restricted)
	return nil
}

func printStats(st bulletsvc.ServerStats) {
	fmt.Printf("live files:     %d\n", st.LiveFiles)
	fmt.Printf("max file size:  %d bytes\n", st.MaxFileSize)
	fmt.Printf("creates/reads/deletes/modifies: %d/%d/%d/%d\n",
		st.Engine.Creates, st.Engine.Reads, st.Engine.Deletes, st.Engine.Modifies)
	fmt.Printf("cache: %d files, %d/%d bytes, %d hits, %d misses\n",
		st.Cache.Files, st.Cache.UsedBytes, st.Cache.TotalBytes,
		st.Engine.CacheHits, st.Engine.CacheMisses)
	fmt.Printf("disk: %d/%d blocks used, fragmentation %.1f%%, largest hole %d blocks\n",
		st.Disk.Used, st.Disk.Total, 100*st.Disk.Fragmentation(), st.Disk.LargestFree)
}

// printHealth renders the self-healing report in a terminal-friendly form.
func printHealth(h bulletsvc.HealthReport) {
	fmt.Printf("live files:       %d (layout v%d, %d checksum blocks dirty)\n",
		h.LiveFiles, h.LayoutVersion, h.DirtySums)
	fmt.Printf("promotions:       %d   recoveries: %d\n", h.Promotions, h.Recoveries)
	for _, r := range h.Replicas {
		state := "alive"
		if !r.Alive {
			state = "DEAD"
		}
		if r.Recovering {
			state = "recovering"
		}
		main := " "
		if r.Main {
			main = "*"
		}
		breaker := ""
		if r.Breaker != "" && r.Breaker != "closed" {
			breaker = fmt.Sprintf(" breaker=%s", strings.ToUpper(r.Breaker))
		}
		ewma := ""
		if r.LatencyEwmaUs > 0 {
			ewma = fmt.Sprintf(" ewma=%dus", r.LatencyEwmaUs)
		}
		fmt.Printf("replica %d%s: %-10s reads=%d writes=%d errors=%d checksum_errors=%d repairs=%d%s%s\n",
			r.Index, main, state, r.Reads, r.Writes, r.Errors, r.ChecksumErrors, r.Repairs, breaker, ewma)
	}
	if h.LastRecover != nil {
		status := "done"
		if h.LastRecover.Running {
			status = "running"
		}
		if h.LastRecover.Error != "" {
			status = "failed: " + h.LastRecover.Error
		}
		fmt.Printf("last recovery:    replica %d (%s)\n", h.LastRecover.Replica, status)
	}
	if h.Scrub != nil {
		s := h.Scrub
		state := "stopped"
		if s.Running {
			state = "running"
		}
		if s.Paused {
			state = "paused"
		}
		fmt.Printf("scrubber:         %s — %d passes, %d files checked, %d repairs, %d backfills, %d unrepairable, %d bytes read\n",
			state, s.Passes, s.FilesChecked, s.Repairs, s.Backfills, s.Unrepairable, s.BytesRead)
	}
}

// printSnapshot renders a full metrics snapshot as sorted key-value lines:
// counters and gauges verbatim, histograms as count plus quantiles.
func printSnapshot(snap stats.Snapshot) {
	section := func(title string, m map[string]int64) {
		if len(m) == 0 {
			return
		}
		fmt.Printf("%s:\n", title)
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("  %-40s %d\n", k, m[k])
		}
	}
	section("counters", snap.Counters)
	section("gauges", snap.Gauges)
	if len(snap.Histograms) > 0 {
		fmt.Println("histograms:")
		keys := make([]string, 0, len(snap.Histograms))
		for k := range snap.Histograms {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			h := snap.Histograms[k]
			fmt.Printf("  %-40s n=%d p50=%.0f p95=%.0f p99=%.0f p999=%.0f max=%d\n",
				k, h.Count, h.P50, h.P95, h.P99, h.P999, h.Max)
		}
	}
}
